"""Differential suite: every pager configuration is the same scan.

The zero-copy mmap path, the plain buffered path and the buffer-pooled path
are three materialisations of one logical access pattern; the paper's
verifiable artifact is the pattern, not the plumbing.  These tests pin that
contract over generated documents and adversarial file geometries:

* byte-identical record streams in both directions,
* **identical** :class:`~repro.storage.paging.IOStatistics` (bytes, pages,
  seeks) whatever the mode and whatever the pool's hit rate,
* identical query answers and I/O through the full disk engine.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.storage.bufferpool import BufferPool
from repro.storage.build import build_database
from repro.storage.database import ArbDatabase
from repro.storage.paging import IOStatistics, PagedReader, PagerConfig
from tests.strategies import unranked_trees

#: The three materialisations under test; "pooled" gets a fresh pool per use.
MODES = ("buffered", "mmap", "pooled")

#: Geometries where records straddle page boundaries (see
#: tests/test_paging_invariants.py for the rationale of each shape).
ODD_GEOMETRIES = [
    (3, 8),
    (5, 16),
    (7, 32),
    (4, 6),
    (13, 64),
    (2, 64),
    (20, 8),  # records larger than a page
]

QUERIES = [
    "QUERY :- V.Label[a];",
    "Q :- V.Root; QUERY :- Q.FirstChild;",
]


def _config(mode: str) -> PagerConfig:
    if mode == "pooled":
        return PagerConfig(mode="buffered", pool=BufferPool())
    return PagerConfig(mode=mode)


def _scan_file(path: str, record_size: int, page_size: int, mode: str):
    stats = IOStatistics()
    reader = PagedReader(path, page_size, stats=stats, config=_config(mode))
    forward = [bytes(record) for record in reader.records_forward(record_size)]
    backward = [bytes(record) for record in reader.records_backward(record_size)]
    return forward, backward, stats


# --------------------------------------------------------------------------- #
# Raw paged scans over adversarial geometries
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("record_size,page_size", ODD_GEOMETRIES)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.binary(min_size=0, max_size=600))
def test_modes_agree_on_raw_files(tmp_path, record_size, page_size, data):
    path = os.path.join(str(tmp_path), f"raw-{record_size}-{page_size}-{len(data)}.bin")
    with open(path, "wb") as handle:
        handle.write(data)
    reference = None
    for mode in MODES:
        outcome = _scan_file(path, record_size, page_size, mode)
        if reference is None:
            reference = outcome
            # Sanity: the streams really are the file's records.
            usable = len(data) - len(data) % record_size
            expected = [data[i : i + record_size] for i in range(0, usable, record_size)]
            assert outcome[0] == expected
            assert outcome[1] == expected[::-1]
        else:
            assert outcome[0] == reference[0], mode
            assert outcome[1] == reference[1], mode
            assert outcome[2] == reference[2], f"IOStatistics differ in mode {mode}"


@pytest.mark.parametrize("mode", MODES)
def test_empty_file_all_modes(tmp_path, mode):
    path = str(tmp_path / "empty.bin")
    open(path, "wb").close()
    stats = IOStatistics()
    reader = PagedReader(path, page_size=16, stats=stats, config=_config(mode))
    assert list(reader.records_forward(4)) == []
    assert list(reader.records_backward(4)) == []
    assert stats.pages_read == 0
    assert stats.bytes_read == 0


@pytest.mark.parametrize("mode", MODES)
def test_single_record_file_all_modes(tmp_path, mode):
    path = str(tmp_path / "single.bin")
    record = b"\x01\x02\x03"
    with open(path, "wb") as handle:
        handle.write(record)
    stats = IOStatistics()
    reader = PagedReader(path, page_size=64, stats=stats, config=_config(mode))
    assert [bytes(r) for r in reader.records_forward(3)] == [record]
    assert [bytes(r) for r in reader.records_backward(3)] == [record]
    assert stats.pages_read == 2
    assert stats.bytes_read == 2 * len(record)


# --------------------------------------------------------------------------- #
# Generated documents through the .arb layer
# --------------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None)
@given(tree=unranked_trees(max_leaves=12))
def test_modes_agree_on_arb_databases(tree):
    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "doc")
        build_database(tree, base)
        outcomes = {}
        for mode in MODES:
            db = ArbDatabase.open(base, pager=_config(mode))
            stats = IOStatistics()
            forward = list(db.records_forward(stats=stats))
            backward = list(db.records_backward(stats=stats))
            outcomes[mode] = (forward, backward, stats)
        reference = outcomes["buffered"]
        assert reference[0] == reference[1][::-1]
        for mode in ("mmap", "pooled"):
            assert outcomes[mode][0] == reference[0]
            assert outcomes[mode][1] == reference[1]
            assert outcomes[mode][2] == reference[2], "IOStatistics must not depend on the pager"


@settings(max_examples=10, deadline=None)
@given(tree=unranked_trees(max_leaves=12))
def test_modes_agree_on_disk_queries(tree):
    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "doc")
        build_database(tree, base)
        per_mode = {}
        for mode in MODES:
            database = Database.open(base, pager=_config(mode))
            batch = database.query_many(QUERIES, engine="disk", temp_dir=tmp)
            per_mode[mode] = (
                [result.selected for result in batch.results],
                [result.counts for result in batch.results],
                batch.arb_io,
                batch.state_io,
            )
        reference = per_mode["buffered"]
        for mode in ("mmap", "pooled"):
            selected, counts, arb_io, state_io = per_mode[mode]
            assert selected == reference[0], mode
            assert counts == reference[1], mode
            assert arb_io == reference[2], f".arb I/O differs in mode {mode}"
            assert state_io == reference[3], f"state-file I/O differs in mode {mode}"


@pytest.mark.parametrize("mode", MODES)
def test_odd_page_geometry_on_arb(tmp_path, mode):
    """A page size that the record size does not divide still round-trips."""
    document = "<r>" + "<a><b/><b/></a>" * 9 + "</r>"
    base = str(tmp_path / "odd")
    build_database(document, base, text_mode="ignore")
    db = ArbDatabase.open(base, page_size=7, pager=_config(mode))
    records = list(db.records_forward())
    assert len(records) == db.n_nodes
    assert records == list(db.records_backward())[::-1]
    assert db.to_binary_tree().labels[0] == "r"
