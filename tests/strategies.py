"""Shared hypothesis strategies for trees, TMNF programs and XPath queries.

The equivalence and collection property suites all need the same raw
material: small random unranked/binary trees over a two-letter alphabet and
random TMNF programs drawn freely from all four rule templates (a generator
restricted to well-known shapes would miss interaction bugs between
up/down/local rules).  Keeping the strategies here keeps the suites in
lockstep -- a signature change lands everywhere at once.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.tmnf import TMNFProgram
from repro.tmnf.ast import DownRule, LocalRule, UpRule
from repro.tree import BinaryTree, UnrankedTree

__all__ = [
    "LABELS",
    "IDB_NAMES",
    "EDB_ATOMS",
    "unranked_trees",
    "binary_trees",
    "tmnf_programs",
    "xpath_queries",
]

LABELS = ("a", "b")
IDB_NAMES = ("X0", "X1", "X2", "X3")
EDB_ATOMS = (
    "Root",
    "-Root",
    "HasFirstChild",
    "-HasFirstChild",
    "HasSecondChild",
    "-HasSecondChild",
    "Label[a]",
    "-Label[a]",
    "Label[b]",
)


def unranked_trees(max_leaves: int = 10):
    """Random unranked trees over :data:`LABELS`."""
    label = st.sampled_from(LABELS)
    nested = st.recursive(
        label,
        lambda children: st.tuples(label, st.lists(children, max_size=3)),
        max_leaves=max_leaves,
    )
    return nested.map(UnrankedTree.from_nested)


def binary_trees(max_leaves: int = 10):
    """The same trees in first-child/next-sibling binary encoding."""
    return unranked_trees(max_leaves).map(BinaryTree.from_unranked)


def _local_rules():
    atoms = st.sampled_from(IDB_NAMES + EDB_ATOMS)
    return st.builds(
        LocalRule,
        head=st.sampled_from(IDB_NAMES),
        body=st.tuples(atoms) | st.tuples(atoms, atoms),
    )


def _down_rules():
    return st.builds(
        DownRule,
        head=st.sampled_from(IDB_NAMES),
        body_pred=st.sampled_from(IDB_NAMES),
        relation=st.sampled_from(("FirstChild", "SecondChild")),
    )


def _up_rules():
    return st.builds(
        UpRule,
        head=st.sampled_from(IDB_NAMES),
        body_pred=st.sampled_from(IDB_NAMES),
        relation=st.sampled_from(("FirstChild", "SecondChild")),
    )


def tmnf_programs(max_rules: int = 6):
    """Random TMNF programs mixing local, down and up rules.

    Every program carries one seeding rule so that it is not vacuously
    empty; its head is the query predicate.
    """
    rule = st.one_of(_local_rules(), _down_rules(), _up_rules())
    seed = st.builds(
        LocalRule,
        head=st.sampled_from(IDB_NAMES),
        body=st.sampled_from([("Label[a]",), ("Root",), ("-HasFirstChild",), ()]),
    )
    return st.tuples(seed, st.lists(rule, min_size=1, max_size=max_rules)).map(
        lambda pair: TMNFProgram.from_rules(
            [pair[0], *pair[1]], query_predicates=pair[0].head
        )
    )


def xpath_queries(max_steps: int = 4):
    """Random predicate-free downward XPath paths, e.g. ``/a//b/*``.

    This is exactly the fragment the one-pass streaming engine accepts, so
    the differential suite can run the same query on all four backends.
    """
    step = st.tuples(st.sampled_from(("/", "//")), st.sampled_from(LABELS + ("*",)))
    return st.lists(step, min_size=1, max_size=max_steps).map(
        lambda steps: "".join(f"{axis}{test}" for axis, test in steps)
    )
