"""Concurrency soak: hammer one service, assert it never bleeds or deadlocks.

Many clients -- asyncio tasks, OS threads through the thread-safe bridge,
and collection shard workers on thread/process pools -- issue interleaved
requests with distinct expected answers.  The suite asserts

* no deadlock (the per-test timeout turns one into a failure),
* no cross-request result bleed: every response carries exactly the count
  its query is known to select, under any coalescing, and
* plan-cache efficiency: repeated structurally-equal queries hit the shared
  thread-safe cache, so misses stay at the number of distinct queries.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro import Collection, Database, PlanCache
from repro.service import QueryService

# Distinct per-label counts so a bled answer can never masquerade as correct.
DOCUMENT = (
    "<lib>"
    + "<a/>" * 3
    + "<b/>" * 5
    + "<c/>" * 7
    + "<d/>" * 11
    + "</lib>"
)

QUERIES = {
    "QUERY :- V.Label[a];": 3,
    "QUERY :- V.Label[b];": 5,
    "QUERY :- V.Label[c];": 7,
    "QUERY :- V.Label[d];": 11,
}


@pytest.fixture
def disk_database(tmp_path) -> Database:
    database = Database.build(DOCUMENT, str(tmp_path / "doc"))
    database.plan_cache = PlanCache()
    return database


@pytest.mark.timeout(60)
def test_soak_async_clients_no_bleed_no_deadlock(disk_database):
    n_requests = 120
    rng = random.Random(2003)
    workload = [rng.choice(list(QUERIES)) for _ in range(n_requests)]

    async def client(service, query, delay):
        await asyncio.sleep(delay)
        response = await service.submit(query)
        return query, response

    async def main():
        async with QueryService(disk_database, window=0.002, max_batch=16) as service:
            # Staggered arrivals spread the workload over many windows.
            tasks = [
                client(service, query, rng.random() * 0.05)
                for query in workload
            ]
            results = await asyncio.gather(*tasks)
            return results, service.stats()

    results, stats = asyncio.run(main())
    assert len(results) == n_requests
    for query, response in results:
        assert response.count() == QUERIES[query], "cross-request result bleed"
    assert stats.completed == n_requests
    assert stats.failed == 0 and stats.isolation_retries == 0
    # Requests spread over many windows, yet far fewer scans than requests.
    assert 1 <= stats.batches < n_requests
    # The shared cache compiled each distinct query once, everything else hit.
    cache = disk_database.plan_cache.stats()
    assert cache["misses"] == len(QUERIES)
    assert cache["hits"] == n_requests - len(QUERIES)


@pytest.mark.timeout(60)
def test_soak_os_threads_through_threadsafe_bridge(disk_database):
    n_threads = 8
    per_thread = 10
    errors: list[BaseException] = []
    observed: list[tuple[str, int]] = []
    observed_lock = threading.Lock()

    async def main():
        async with QueryService(disk_database, window=0.005, max_batch=32) as service:
            def hammer(seed):
                rng = random.Random(seed)
                for _ in range(per_thread):
                    query = rng.choice(list(QUERIES))
                    try:
                        response = service.submit_threadsafe(query).result(timeout=30)
                        with observed_lock:
                            observed.append((query, response.count()))
                    except BaseException as exc:  # noqa: BLE001 - collected
                        with observed_lock:
                            errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: [thread.join() for thread in threads]
            )
            return service.stats()

    stats = asyncio.run(main())
    assert not errors
    assert len(observed) == n_threads * per_thread
    for query, count in observed:
        assert count == QUERIES[query], "cross-request result bleed"
    assert stats.completed == n_threads * per_thread
    assert stats.failed == 0
    cache = disk_database.plan_cache.stats()
    assert cache["misses"] == len(QUERIES)


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.timeout(120)
def test_soak_collection_shard_executors(tmp_path, executor):
    collection = Collection.create(
        str(tmp_path / f"corpus-{executor}"), plan_cache=PlanCache()
    )
    n_docs = 4
    for index in range(n_docs):
        collection.add_document(DOCUMENT, doc_id=f"doc-{index}")
    n_requests = 6 if executor == "process" else 24

    async def main():
        async with QueryService(
            collection, window=0.01, n_workers=2, executor=executor
        ) as service:
            rng = random.Random(7)
            workload = [rng.choice(list(QUERIES)) for _ in range(n_requests)]
            responses = await asyncio.gather(
                *[service.submit(query) for query in workload]
            )
            return workload, responses, service.stats()

    workload, responses, stats = asyncio.run(main())
    for query, response in zip(workload, responses):
        assert response.count() == n_docs * QUERIES[query], "result bleed"
    assert stats.completed == n_requests
    assert stats.failed == 0 and stats.isolation_retries == 0
