"""Crash-injection coverage for the durability fixes outside the WAL path.

Three small persistence-layer surfaces used to commit less than they
claimed; each gets the fix asserted under a real crash model (``os._exit``
at an injected fault point, a subprocess per attempt):

* ``CollectionManifest.save`` now uses the temp+fsync+replace protocol --
  a crash between the durable temp file and the rename leaves the old
  manifest byte-intact, never an empty or torn ``collection.json``;
* ``build_database`` fsyncs every generation-0 file (`.arb`, `.lab`,
  `.idx`, `.meta`) *before* the pointer bump -- a crash at the
  ``build-files`` stage leaves the data files complete on disk, and a
  retry lands the build;
* ``arb serve --ready-file`` writes its ``host port`` line atomically --
  a polling watcher can never observe the file created-but-empty.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.collection import Collection
from repro.collection.manifest import MANIFEST_NAME
from repro.engine import Database
from repro.storage.build import build_database
from repro.storage.durability import FAULT_ENV, FAULT_EXIT_CODE
from repro.storage.generations import read_pointer

SRC = str(Path(__file__).resolve().parents[1] / "src")

DOC = "<lib><book><a/><b/></book><dvd/><book/></lib>"
BOOKS = "QUERY :- V.Label[book];"

MANIFEST_SCRIPT = """
import sys
from repro.collection import Collection
from repro.storage.update import Relabel
collection = Collection.open(sys.argv[1])
collection.apply("one", Relabel(1, "tome"))
print("survived")
"""

SAVE_SCRIPT = """
import sys
from repro.collection import Collection
collection = Collection.open(sys.argv[1])
collection.manifest.name = sys.argv[2]
collection.save_manifest()
print("survived")
"""

BUILD_SCRIPT = """
import sys
from repro.storage.build import build_database
build_database(sys.argv[2], sys.argv[1], text_mode="ignore")
print("survived")
"""


def _run(script: str, args: list[str], fault: str | None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if fault is None:
        env.pop(FAULT_ENV, None)
    else:
        env[FAULT_ENV] = fault
    return subprocess.run(
        [sys.executable, "-c", script, *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


# --------------------------------------------------------------------------- #
# Manifest durability
# --------------------------------------------------------------------------- #


def test_manifest_crash_between_temp_and_rename_keeps_the_old_manifest(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    manifest_path = os.path.join(root, MANIFEST_NAME)
    with open(manifest_path, "rb") as handle:
        before = handle.read()

    completed = _run(MANIFEST_SCRIPT, [root], "manifest-tmp")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    assert "survived" not in completed.stdout

    # The old manifest is byte-intact (the crash hit after the durable temp
    # file, before the rename) and still loads.
    with open(manifest_path, "rb") as handle:
        assert handle.read() == before
    reopened = Collection.open(root)
    assert reopened.manifest.get("one").generation == 0
    assert reopened.query(BOOKS).count() == 2

    # A clean save replaces it whole; the leftover temp file is harmless.
    reopened.save_manifest()
    with open(manifest_path, "r", encoding="utf-8") as handle:
        json.load(handle)


def test_manifest_is_never_empty_or_torn_under_repeated_crashes(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    manifest_path = os.path.join(root, MANIFEST_NAME)
    for attempt in range(3):
        completed = _run(SAVE_SCRIPT, [root, f"renamed-{attempt}"], "manifest-tmp")
        assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # parses every time: never torn
        assert payload["documents"], payload
        assert payload["name"] != f"renamed-{attempt}"  # the rename never landed


# --------------------------------------------------------------------------- #
# Build durability
# --------------------------------------------------------------------------- #


def test_build_crash_before_the_pointer_leaves_complete_data_files(tmp_path):
    base = str(tmp_path / "doc")
    twin = str(tmp_path / "twin")
    build_database(DOC, twin, text_mode="ignore")

    completed = _run(BUILD_SCRIPT, [base, DOC], "build-files")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    # Every data file the pointer bump would have committed to is already
    # complete and durable -- byte-identical to an uncrashed build.
    for suffix in (".arb", ".lab", ".meta", ".idx"):
        with open(base + suffix, "rb") as mine, open(twin + suffix, "rb") as theirs:
            assert mine.read() == theirs.read(), suffix

    # The retry lands the build whole.
    completed = _run(BUILD_SCRIPT, [base, DOC], None)
    assert completed.returncode == 0, completed.stderr
    database = Database.open(base)
    assert database.n_nodes == 6
    assert database.query(BOOKS, engine="disk").count() == 2


def test_rebuild_crash_before_the_pointer_keeps_the_old_counter(tmp_path):
    base = str(tmp_path / "doc")
    build_database(DOC, base, text_mode="ignore")
    assert read_pointer(base).counter == 1

    completed = _run(BUILD_SCRIPT, [base, "<other><x/></other>"], "build-files")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    # The counter bump never happened: no committed change number names the
    # crashed rebuild's files.
    assert read_pointer(base).counter == 1

    completed = _run(BUILD_SCRIPT, [base, "<other><x/></other>"], None)
    assert completed.returncode == 0, completed.stderr
    assert read_pointer(base).counter == 2
    assert Database.open(base).n_nodes == 2


# --------------------------------------------------------------------------- #
# Ready-file atomicity
# --------------------------------------------------------------------------- #


def test_serve_ready_file_is_written_atomically(tmp_path):
    from repro.service.server import serve

    base = str(tmp_path / "doc")
    build_database(DOC, base, text_mode="ignore")
    ready = str(tmp_path / "ready.txt")

    async def main():
        task = asyncio.ensure_future(serve(base, port=0, ready_file=ready))
        try:
            for _ in range(500):
                # A polling watcher: the instant the path exists, its
                # content must already be complete -- the atomic rename is
                # the publication point, so created-but-empty is impossible.
                if os.path.exists(ready):
                    with open(ready, "r", encoding="utf-8") as handle:
                        return handle.read()
                await asyncio.sleep(0.01)
            raise AssertionError("ready file never appeared")
        finally:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    content = asyncio.run(main())
    host, port = content.split()
    assert int(port) > 0
    assert content.endswith("\n")
    # No temp file left behind: the rename consumed it.
    assert not os.path.exists(ready + ".tmp")
