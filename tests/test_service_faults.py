"""Fault injection: a bad request fails alone, never its batch-mates.

Three failure classes are injected:

* a query that cannot *compile* (syntax error, unknown engine input) --
  must fail at submission, before it can enter a shared batch;
* a query whose evaluation *raises mid-batch* (a poisoned evaluator) --
  the shared scan aborts, and the service must isolate the poison by
  re-running the batch one request at a time so only the poisoned caller
  sees the error;
* repeated faults -- the coalescer must keep serving normally afterwards
  (no wedged batcher task, no stuck queue, no leaked per-plan locks).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Database, PlanCache
from repro.errors import ReproError, TMNFSyntaxError
from repro.service import QueryService

DOCUMENT = "<lib>" + "<book><t>x</t></book>" * 7 + "<dvd/>" * 3 + "</lib>"

BOOKS = "QUERY :- V.Label[book];"
DVDS = "QUERY :- V.Label[dvd];"
POISON = "QUERY :- V.Label[poison];"


@pytest.fixture
def disk_database(tmp_path) -> Database:
    database = Database.build(DOCUMENT, str(tmp_path / "doc"))
    database.plan_cache = PlanCache()
    return database


def run(coroutine):
    return asyncio.run(coroutine)


def poison_plan(database: Database, query: str) -> None:
    """Make ``query``'s (cached) plan raise during bottom-up evaluation."""
    plan, _ = database.plan_cache.lookup(query)

    def explode(*args, **kwargs):
        raise RuntimeError("injected mid-batch fault")

    plan.evaluator.compute_reachable_states = explode


# --------------------------------------------------------------------------- #
# Compile-time faults
# --------------------------------------------------------------------------- #


def test_malformed_query_fails_only_itself(disk_database):
    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            return await asyncio.gather(
                service.submit(BOOKS),
                service.submit("THIS IS NOT A PROGRAM"),
                service.submit(DVDS),
                return_exceptions=True,
            )

    good_books, error, good_dvds = run(main())
    assert isinstance(error, TMNFSyntaxError)
    assert good_books.count() == 7
    assert good_dvds.count() == 3
    # The malformed request never entered a batch: the good pair coalesced.
    assert good_books.batch_size == 2


def test_malformed_xpath_fails_cleanly(disk_database):
    async def main():
        async with QueryService(disk_database, window=0.02) as service:
            with pytest.raises(ReproError):
                await service.submit("///[[", language="xpath")
            response = await service.submit("//t", language="xpath")
            return response

    assert run(main()).count() == 7


# --------------------------------------------------------------------------- #
# Mid-batch evaluation faults
# --------------------------------------------------------------------------- #


def test_midbatch_fault_is_isolated_to_its_request(disk_database):
    poison_plan(disk_database, POISON)

    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            results = await asyncio.gather(
                service.submit(BOOKS),
                service.submit(POISON),
                service.submit(DVDS),
                service.submit(BOOKS),
                return_exceptions=True,
            )
            return results, service.stats()

    (books, poison, dvds, books2), stats = run(main())
    # Only the poisoned request surfaces the injected error...
    assert isinstance(poison, RuntimeError)
    assert "injected" in str(poison)
    # ... its batch-mates still get clean, correct answers (retried alone).
    assert books.count() == 7 and books2.count() == 7
    assert dvds.count() == 3
    assert books.isolated_retry and dvds.isolated_retry
    assert stats.isolation_retries == 1
    assert stats.failed == 1
    assert stats.completed == 3


def test_coalescer_keeps_serving_after_faults(disk_database):
    poison_plan(disk_database, POISON)

    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            # Two poisoned windows in a row ...
            for _ in range(2):
                results = await asyncio.gather(
                    service.submit(POISON),
                    service.submit(BOOKS),
                    return_exceptions=True,
                )
                assert isinstance(results[0], RuntimeError)
                assert results[1].count() == 7
            # ... and the next healthy window coalesces as if nothing happened.
            burst = await asyncio.gather(
                service.submit(BOOKS), service.submit(DVDS)
            )
            return burst, service.stats()

    burst, stats = run(main())
    assert [response.count() for response in burst] == [7, 3]
    assert all(response.coalesced and not response.isolated_retry
               for response in burst)
    assert stats.isolation_retries == 2
    assert stats.failed == 2


def test_cancelled_caller_does_not_poison_the_batch(disk_database):
    """A caller that gives up mid-window must not break its batch-mates.

    The demux guards with ``future.done()`` before delivering: a cancelled
    future would otherwise raise ``InvalidStateError`` inside the batcher and
    wedge every later window.
    """

    async def main():
        async with QueryService(disk_database, window=0.1) as service:
            impatient = asyncio.ensure_future(service.submit(BOOKS))
            patient = asyncio.ensure_future(service.submit(DVDS))
            await asyncio.sleep(0.01)  # both are queued inside the window
            impatient.cancel()
            response = await patient
            # The service must still be healthy for the next window.
            follow_up = await service.submit(BOOKS)
            return response, follow_up

    response, follow_up = run(main())
    assert response.count() == 3
    assert response.batch_size == 2  # the cancelled rider was still evaluated
    assert follow_up.count() == 7


def test_fault_in_single_request_batch(disk_database):
    poison_plan(disk_database, POISON)

    async def main():
        async with QueryService(disk_database, window=0.01) as service:
            with pytest.raises(RuntimeError):
                await service.submit(POISON)
            return await service.submit(BOOKS)

    assert run(main()).count() == 7
