"""Crash consistency of copy-on-write updates (`storage/update.py`).

A subprocess applies an update with ``REPRO_UPDATE_FAULT`` naming one of the
injected fault points; the update code then dies with ``os._exit`` at that
exact stage -- no cleanup handlers, no flushing, a real crash model.  The
invariants, at *every* stage:

* the old generation's files are byte-identical to their pre-update state
  (copy-on-write means the update path never opens them for writing);
* the generation pointer is never torn: it resolves to the complete old
  generation before the atomic swap and to the complete new generation
  after it;
* a retry after the crash succeeds and reaches the post-update state, even
  over the torn files a mid-splice crash left behind.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import Database
from repro.storage.build import build_database
from repro.storage.generations import (
    list_generations,
    pointer_path,
    read_pointer,
    resolve_generation,
)
from repro.storage.update import FAULT_ENV, FAULT_EXIT_CODE, FAULT_POINTS

SRC = str(Path(__file__).resolve().parents[1] / "src")

DOC = "<lib><book><a/><b/></book><dvd/><book/></lib>"
BOOKS = "QUERY :- V.Label[book];"

#: The update the crashing subprocess attempts: an insert, so the new
#: generation differs from the old one in size as well as content.
CRASH_SCRIPT = """
import sys
from repro.storage.update import InsertSubtree, apply_update
apply_update(sys.argv[1], InsertSubtree(0, "<book><isbn/></book>", position=0))
print("survived")
"""

#: Fault points at which the swap has not happened yet.
PRE_SWAP_POINTS = tuple(point for point in FAULT_POINTS if point != "after-swap")


def _build(tmp_path) -> str:
    base = str(tmp_path / "doc")
    build_database(DOC, base, text_mode="ignore")
    return base


def _generation_files(base: str) -> dict[str, bytes]:
    """Byte snapshot of the current generation plus the pointer file."""
    _, gen_base = resolve_generation(base)
    snapshot = {}
    for path in (gen_base + ".arb", gen_base + ".lab", gen_base + ".meta",
                 pointer_path(base)):
        if os.path.exists(path):
            with open(path, "rb") as handle:
                snapshot[path] = handle.read()
    return snapshot


def _crash_apply(base: str, fault: str | None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if fault is None:
        env.pop(FAULT_ENV, None)
    else:
        env[FAULT_ENV] = fault
    return subprocess.run(
        [sys.executable, "-c", CRASH_SCRIPT, base],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("fault", PRE_SWAP_POINTS)
def test_crash_before_swap_preserves_the_old_generation(tmp_path, fault):
    base = _build(tmp_path)
    before = _generation_files(base)
    answers_before = Database.open(base).query(BOOKS, engine="disk").selected_nodes()

    completed = _crash_apply(base, fault)
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    assert "survived" not in completed.stdout

    # The pointer still names the old generation and every old byte is intact.
    assert read_pointer(base).generation == 0
    assert _generation_files(base) == before
    # Whatever files the dead attempt left are not treated as history:
    # their numbers exceed the committed counter.
    assert list_generations(base) == [0]

    # The database reopens cleanly and answers exactly as before the attempt.
    database = Database.open(base)
    assert database.generation == 0
    assert database.n_nodes == 6
    assert database.query(BOOKS, engine="disk").selected_nodes() == answers_before


def test_crash_after_swap_lands_on_the_complete_new_generation(tmp_path):
    base = _build(tmp_path)
    old = _generation_files(base)

    completed = _crash_apply(base, "after-swap")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    pointer = read_pointer(base)
    assert pointer.generation > 0  # the swap happened
    database = Database.open(base)
    assert database.generation == pointer.generation
    assert database.n_nodes == 8  # insert applied in full
    assert database.query(BOOKS, engine="disk").count() == 3
    # The old generation files are still byte-identical (only the pointer moved).
    for path, payload in old.items():
        if path == pointer_path(base):
            continue
        with open(path, "rb") as handle:
            assert handle.read() == payload, path


@pytest.mark.parametrize("fault", ["mid-arb", "pointer-tmp"])
def test_retry_after_crash_recovers(tmp_path, fault):
    """A crashed attempt (torn new files included) never blocks the retry."""
    base = _build(tmp_path)
    completed = _crash_apply(base, fault)
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    completed = _crash_apply(base, None)  # same update, no fault
    assert completed.returncode == 0, completed.stderr
    assert "survived" in completed.stdout

    database = Database.open(base)
    assert database.n_nodes == 8
    assert database.query(BOOKS, engine="disk").count() == 3


def test_mid_splice_crash_leaves_the_torn_file_unreachable(tmp_path):
    base = _build(tmp_path)
    completed = _crash_apply(base, "mid-arb")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    # A torn .arb of the attempted generation may exist on disk...
    pointer = read_pointer(base)
    attempted = f"{base}.g{pointer.counter + 1}.arb"
    # ...but no resolution path ever reaches it: the pointer still names the
    # old generation, whose files pass the open-time size check.
    assert read_pointer(base).generation == 0
    assert Database.open(base).n_nodes == 6
    if os.path.exists(attempted):
        assert os.path.getsize(attempted) != 8 * 2  # genuinely incomplete


def test_pointer_file_is_json_and_never_torn(tmp_path):
    base = _build(tmp_path)
    for fault in FAULT_POINTS:
        completed = _crash_apply(base, fault)
        assert completed.returncode == FAULT_EXIT_CODE, (fault, completed.stderr)
        with open(pointer_path(base), "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # parses at every stage: never torn
        assert set(payload) == {"generation", "counter"}
        # Whatever happened, the pointer resolves to an openable database.
        Database.open(base).query(BOOKS, engine="disk")
