"""Tests for the two-phase tree-automata evaluator (Algorithm 4.6)."""

from __future__ import annotations

import random

from repro.baselines.datalog import evaluate_fixpoint
from repro.core.horn import Rule, fact
from repro.core.two_phase import BOTTOM, TwoPhaseEvaluator
from repro.tmnf import TMNFProgram
from repro.tree import BinaryTree, parse_xml
from tests.conftest import EVEN_ODD_EXAMPLE, RUNNING_EXAMPLE, random_unranked_tree


class TestPaperWorkedExample:
    """Examples 4.3, 4.5 and 4.7 of the paper, verified verbatim."""

    def setup_method(self):
        self.program = TMNFProgram.parse(RUNNING_EXAMPLE, query_predicates="Q")
        self.tree = BinaryTree.from_unranked(parse_xml("<a><a><a/></a></a>"))
        self.evaluator = TwoPhaseEvaluator(self.program)

    def test_bottom_up_residual_programs(self):
        states = self.evaluator.run_bottom_up(self.tree)
        rho = [self.evaluator.state_program(s) for s in states]
        assert rho[2] == frozenset({Rule("P4", ["P3"])})
        assert rho[1] == frozenset({Rule("P5", ["P2"])})
        assert rho[0] == frozenset({fact("P1"), fact("Q")})

    def test_top_down_true_predicates(self):
        result = self.evaluator.evaluate(self.tree, keep_true_predicates=True)
        assert result.true_predicates[0] == frozenset({"P1", "Q"})
        assert result.true_predicates[1] == frozenset({"P2", "P5"})
        assert result.true_predicates[2] == frozenset({"P3", "P4"})

    def test_only_root_selected(self):
        result = self.evaluator.evaluate(self.tree)
        assert result.selected == {"Q": [0]}
        assert result.selected_nodes() == [0]

    def test_residual_programs_contain_no_edb_predicates(self):
        states = self.evaluator.run_bottom_up(self.tree)
        edb = self.program.prop_local().edb_predicates
        for state in states:
            for rule in self.evaluator.state_program(state):
                assert rule.head not in edb
                assert not (set(rule.body) & edb)


class TestEvenOddExample:
    """Example 2.2: counting 'a'-labelled leaves modulo 2."""

    def count_a_leaves_in_unranked_subtree(self, tree: BinaryTree, node: int) -> int:
        """Count 'a'-labelled leaves in the *unranked* subtree of ``node``.

        In the first-child/next-sibling encoding, the unranked subtree of a
        node is the node itself plus the binary subtree of its first child.
        """
        count = 1 if tree.labels[node] == "a" and tree.is_leaf(node) else 0
        first = tree.first_child[node]
        if first != -1:
            count += sum(
                1
                for v in tree.subtree_nodes(first)
                if tree.labels[v] == "a" and tree.is_leaf(v)
            )
        return count

    def test_even_matches_direct_count(self):
        program = TMNFProgram.parse(EVEN_ODD_EXAMPLE, query_predicates=("Even", "Odd"))
        document = "<r><x><a/><a/><b/></x><a/><y><a/><c/></y><a/></r>"
        tree = BinaryTree.from_unranked(parse_xml(document))
        result = TwoPhaseEvaluator(program).evaluate(tree)
        even = set(result.selected["Even"])
        odd = set(result.selected["Odd"])
        for node in range(len(tree)):
            expected_even = self.count_a_leaves_in_unranked_subtree(tree, node) % 2 == 0
            assert (node in even) == expected_even
            assert (node in odd) == (not expected_even)
        # Every node gets exactly one of the two marks.
        assert even | odd == set(range(len(tree)))
        assert not (even & odd)


class TestEngineMechanics:
    def test_bottom_pseudo_state_constant(self):
        assert BOTTOM == -1

    def test_transition_tables_are_shared_across_evaluations(self):
        program = TMNFProgram.parse(RUNNING_EXAMPLE, query_predicates="Q")
        evaluator = TwoPhaseEvaluator(program)
        tree = BinaryTree.from_unranked(parse_xml("<a><a><a/></a></a>"))
        evaluator.evaluate(tree)
        first = evaluator.stats.bu_transitions
        evaluator.evaluate(tree)
        # Second run over the same tree hits the cache for every node.
        assert evaluator.stats.bu_transitions == first

    def test_memoization_reduces_transition_computations(self):
        program = TMNFProgram.parse(EVEN_ODD_EXAMPLE, query_predicates="Even")
        document = "<r>" + "<a></a><b></b>" * 50 + "</r>"
        tree = BinaryTree.from_unranked(parse_xml(document))
        lazy = TwoPhaseEvaluator(program, memoize=True)
        lazy.evaluate(tree)
        eager = TwoPhaseEvaluator(program, memoize=False)
        eager.evaluate(tree)
        assert lazy.stats.bu_transitions < eager.stats.bu_transitions
        assert eager.stats.bu_transitions == len(tree)

    def test_statistics_row_has_expected_keys(self):
        program = TMNFProgram.parse(RUNNING_EXAMPLE, query_predicates="Q")
        evaluator = TwoPhaseEvaluator(program)
        tree = BinaryTree.from_unranked(parse_xml("<a><a><a/></a></a>"))
        result = evaluator.evaluate(tree)
        row = result.statistics.as_row()
        for key in ("bu_seconds", "td_seconds", "bu_transitions", "td_transitions",
                    "total_seconds", "selected", "memory_kb"):
            assert key in row
        assert result.statistics.nodes == len(tree)

    def test_single_node_tree(self):
        program = TMNFProgram.parse("P :- Root; Q :- P, Leaf;", query_predicates="Q")
        tree = BinaryTree.from_unranked(parse_xml("<only/>"))
        result = TwoPhaseEvaluator(program).evaluate(tree)
        assert result.selected["Q"] == [0]

    def test_query_over_character_nodes(self):
        """Text is part of the tree: select 'gene' elements containing an 'x' char."""
        program = TMNFProgram.parse(
            """
            HasX :- Label[x];
            HasX :- HasX.invNextSibling;
            HasXChild :- HasX.invFirstChild;
            QUERY :- HasXChild, Label[gene];
            """
        )
        document = "<db><gene>axb</gene><gene>bbb</gene><gene>x</gene></db>"
        tree = BinaryTree.from_unranked(parse_xml(document))
        result = TwoPhaseEvaluator(program).evaluate(tree)
        selected_labels = [tree.labels[v] for v in result.selected["QUERY"]]
        assert selected_labels == ["gene", "gene"]
        # The middle gene (only 'b's) must not be selected.
        gene_nodes = [v for v in range(len(tree)) if tree.labels[v] == "gene"]
        assert gene_nodes[1] not in result.selected["QUERY"]


class TestAgainstFixpointOnRandomInputs:
    """Deterministic (seeded) randomised comparison against the fixpoint oracle.

    The hypothesis-based equivalence test lives in
    ``test_property_equivalence.py``; this one exercises larger trees than
    hypothesis comfortably generates.
    """

    PROGRAMS = {
        "running": (RUNNING_EXAMPLE, "Q"),
        "even-odd": (EVEN_ODD_EXAMPLE, "Even"),
        "descendant-of-b": (
            """
            Start :- Label[b];
            QUERY :- Start.FirstChild.(FirstChild | SecondChild)*;
            """,
            "QUERY",
        ),
        "has-a-descendant": (
            """
            Mark :- Label[a];
            Up :- Mark.(invFirstChild | invSecondChild)+;
            QUERY :- Up, Label[b];
            """,
            "QUERY",
        ),
    }

    def test_selected_nodes_match_fixpoint(self):
        rng = random.Random(20030901)
        for name, (text, query) in self.PROGRAMS.items():
            program = TMNFProgram.parse(text, query_predicates=query)
            for trial in range(15):
                tree = BinaryTree.from_unranked(
                    random_unranked_tree(rng, max_nodes=60, labels=("a", "b", "c"))
                )
                auto = TwoPhaseEvaluator(program).evaluate(tree)
                fix = evaluate_fixpoint(program, tree)
                assert auto.selected[query] == fix.selected[query], (
                    f"mismatch for program {name!r} on trial {trial}"
                )

    def test_all_true_predicates_match_fixpoint(self):
        rng = random.Random(42)
        program = TMNFProgram.parse(EVEN_ODD_EXAMPLE, query_predicates="Even")
        for _ in range(10):
            tree = BinaryTree.from_unranked(random_unranked_tree(rng, max_nodes=40))
            auto = TwoPhaseEvaluator(program).evaluate(tree, keep_true_predicates=True)
            fix = evaluate_fixpoint(program, tree)
            for node in range(len(tree)):
                assert auto.true_predicates[node] == frozenset(fix.true_predicates[node])
