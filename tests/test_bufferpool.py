"""Behaviour of the shared LRU page buffer pool (`storage/bufferpool.py`).

Pinned here: strict LRU eviction order under a byte budget, page sharing
across scans (a backward scan hits the pages its forward sibling loaded,
and concurrent threads share one pool), generation-bump invalidation on
rebuild, and the cardinal rule that a pool changes *no* logical I/O counter
-- only the pool's own hit/miss/physical-read telemetry.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import StorageError
from repro.storage.bufferpool import BufferPool, default_buffer_pool, resolve_pager
from repro.storage.build import build_database
from repro.storage.database import ArbDatabase
from repro.storage.paging import IOStatistics, PagedReader, PagerConfig


def _write(path, data: bytes) -> str:
    with open(path, "wb") as handle:
        handle.write(data)
    return str(path)


# --------------------------------------------------------------------------- #
# LRU eviction
# --------------------------------------------------------------------------- #


def test_lru_eviction_order_is_strict(tmp_path):
    path = _write(tmp_path / "data.bin", bytes(range(64)))
    pool = BufferPool(capacity_bytes=3 * 16)  # room for exactly three 16-byte pages
    config = PagerConfig(pool=pool)
    reader = PagedReader(path, page_size=16, config=config)
    list(reader.records_forward(16))  # loads pages 0..3; page 0 evicted at 3
    assert pool.stats.misses == 4
    assert pool.stats.evictions == 1
    indexes = [key[-1] for key in pool.cached_keys()]
    assert indexes == [1, 2, 3]  # least recently used first

    # Touch page 1 (the current LRU victim candidate), then load page 0
    # again: page *2* must be the one evicted, not the refreshed page 1.
    generation = pool.generation_for(path)
    key_path = os.path.abspath(path)
    pool.read_page(key_path, generation, 16, 1, lambda: (_ for _ in ()).throw(AssertionError))
    with open(path, "rb") as handle:
        payload = handle.read(16)
    pool.read_page(key_path, generation, 16, 0, lambda: payload)
    indexes = [key[-1] for key in pool.cached_keys()]
    assert indexes == [3, 1, 0]
    assert pool.stats.evictions == 2


def test_capacity_zero_keeps_nothing(tmp_path):
    path = _write(tmp_path / "data.bin", bytes(32))
    pool = BufferPool(capacity_bytes=0)
    reader = PagedReader(path, page_size=8, config=PagerConfig(pool=pool))
    assert len(list(reader.records_forward(8))) == 4
    assert len(pool) == 0
    assert pool.stats.evictions == 4


def test_negative_capacity_rejected():
    with pytest.raises(StorageError):
        BufferPool(capacity_bytes=-1)


# --------------------------------------------------------------------------- #
# Cross-scan sharing
# --------------------------------------------------------------------------- #


def test_backward_scan_hits_pages_of_forward_scan(tmp_path):
    path = _write(tmp_path / "data.bin", bytes(range(200)))
    pool = BufferPool()
    config = PagerConfig(pool=pool)
    stats = IOStatistics()
    reader = PagedReader(path, page_size=64, stats=stats, config=config)
    list(reader.records_forward(4))
    assert pool.stats.misses == 4 and pool.stats.hits == 0
    list(reader.records_backward(4))
    # Every page of the backward scan came from memory...
    assert pool.stats.misses == 4 and pool.stats.hits == 4
    # ...yet the logical counters saw two full scans.
    assert stats.pages_read == 8
    assert stats.bytes_read == 400
    assert stats.seeks == 2
    # The pool's physical I/O is the four real loads, nothing more.
    assert pool.io.pages_read == 4
    assert pool.io.bytes_read == 200


def test_concurrent_scans_share_one_pool(tmp_path):
    base = str(tmp_path / "doc")
    build_database("<r>" + "<a/>" * 500 + "</r>", base, text_mode="ignore")
    pool = BufferPool()
    config = PagerConfig(pool=pool)
    # Warm the pool with one scan so the concurrent phase is deterministic
    # (racing first misses may each load; a warm page must hit for everyone).
    warm = ArbDatabase.open(base, pager=config)
    assert sum(1 for _ in warm.records_forward()) == 501
    loaded = pool.io.pages_read
    results = []

    def scan():
        db = ArbDatabase.open(base, pager=config)
        results.append(sum(1 for _ in db.records_forward()))

    threads = [threading.Thread(target=scan) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results == [501] * 6
    # Every page of every concurrent scan came from memory.
    assert pool.io.pages_read == loaded
    assert pool.stats.hits >= 6 * loaded


def test_readers_with_different_page_sizes_never_share_pages(tmp_path):
    """The page size is part of the key: different grids, different pages."""
    data = bytes(range(256))
    path = _write(tmp_path / "data.bin", data)
    pool = BufferPool()
    config = PagerConfig(pool=pool)
    small = PagedReader(path, page_size=16, config=config)
    large = PagedReader(path, page_size=64, config=config)
    records = [data[i : i + 8] for i in range(0, 256, 8)]
    assert [bytes(r) for r in small.records_forward(8)] == records
    assert [bytes(r) for r in large.records_forward(8)] == records
    assert [bytes(r) for r in large.records_backward(8)] == records[::-1]
    # 16 small pages + 4 large pages resident, disjoint key spaces.
    sizes = {key[2] for key in pool.cached_keys()}
    assert sizes == {16, 64}
    assert pool.stats.misses == 20


def test_pool_changes_no_logical_counter(tmp_path):
    base = str(tmp_path / "doc")
    build_database("<r><a/><b/><a/></r>", base, text_mode="ignore")
    plain, pooled = IOStatistics(), IOStatistics()
    db_plain = ArbDatabase.open(base)
    db_pooled = ArbDatabase.open(base, pager=PagerConfig(pool=BufferPool()))
    for _ in range(3):  # repeated scans: pool hits must not skew counters
        list(db_plain.records_forward(stats=plain))
        list(db_pooled.records_forward(stats=pooled))
    assert plain == pooled


# --------------------------------------------------------------------------- #
# Invalidation on rebuild
# --------------------------------------------------------------------------- #


def test_invalidate_bumps_generation_and_purges(tmp_path):
    path = _write(tmp_path / "data.bin", bytes(64))
    pool = BufferPool()
    reader = PagedReader(path, page_size=16, config=PagerConfig(pool=pool))
    list(reader.records_forward(16))
    assert len(pool) == 4
    before = pool.generation_for(path)
    epoch = pool.invalidate(path)
    assert epoch == 1
    assert pool.epoch_of(path) == 1
    assert len(pool) == 0
    assert pool.stats.invalidations == 1
    assert pool.generation_for(path) != before


def test_rebuild_through_builder_invalidates_default_pool(tmp_path):
    base = str(tmp_path / "doc")
    build_database("<r><a/></r>", base, text_mode="ignore")
    pool = default_buffer_pool()
    config = resolve_pager("buffered")
    assert config.pool is pool

    db = ArbDatabase.open(base, pager=config)
    first = [record.label_index for record in db.records_forward()]
    epoch_before = pool.epoch_of(base + ".arb")

    # Rebuild the same path with different content; the builder must bump
    # the generation so the cached pages can never be served again.
    build_database("<r><b/><b/></r>", base, text_mode="ignore")
    assert pool.epoch_of(base + ".arb") == epoch_before + 1

    db = ArbDatabase.open(base, pager=config)
    labels = [db.label_name(record) for record in db.records_forward()]
    assert labels == ["r", "b", "b"]
    assert len(first) == 2  # the old document really was different


def test_fingerprint_protects_private_pools(tmp_path):
    """A pool nobody told about a rebuild still never serves stale pages."""
    base = str(tmp_path / "doc")
    build_database("<r><a/></r>", base, text_mode="ignore")
    pool = BufferPool()  # private: the builder only bumps the default pool
    config = PagerConfig(pool=pool)
    db = ArbDatabase.open(base, pager=config)
    list(db.records_forward())
    build_database("<r><b/><b/></r>", base, text_mode="ignore")
    db = ArbDatabase.open(base, pager=config)
    labels = [db.label_name(record) for record in db.records_forward()]
    assert labels == ["r", "b", "b"]


def test_fingerprint_survives_same_size_same_mtime_rewrite(tmp_path):
    """The counter component closes the size/mtime collision hole.

    A rebuild that produces a file of the *same size* within the *same
    mtime tick* (forced here with os.utime; real filesystems with coarse
    timestamps do it on their own) used to collide with the cached
    generation on private pools.  The generation-pointer counter recorded
    in the ``.meta`` sidecar changes on every build and update, so the
    fingerprints differ even when size and mtime agree.
    """
    base = str(tmp_path / "doc")
    arb_path = base + ".arb"
    build_database("<r><a/><b/></r>", base, text_mode="ignore")
    mtime = os.stat(arb_path)
    pool = BufferPool()  # private: no epoch bump reaches it
    config = PagerConfig(pool=pool)
    db = ArbDatabase.open(base, pager=config)
    before = [db.label_name(record) for record in db.records_forward()]
    assert before == ["r", "a", "b"]
    generation_before = pool.generation_for(arb_path)

    # Same node count, same label-table size: the .arb is byte-compatible in
    # size.  Pin the mtime to the old value to simulate a one-tick rewrite.
    build_database("<r><b/><a/></r>", base, text_mode="ignore")
    os.utime(arb_path, ns=(mtime.st_atime_ns, mtime.st_mtime_ns))
    assert os.path.getsize(arb_path) == 3 * 2

    generation_after = pool.generation_for(arb_path)
    assert generation_after != generation_before  # the counter moved
    db = ArbDatabase.open(base, pager=config)
    labels = [db.label_name(record) for record in db.records_forward()]
    assert labels == ["r", "b", "a"]  # fresh pages, not the cached ones


def test_update_generations_never_collide_in_the_pool(tmp_path):
    """Each `.arb` generation is its own pool key space; old pages stay hot."""
    from repro.engine import Database
    from repro.storage.update import Relabel

    base = str(tmp_path / "doc")
    build_database("<r><a/><b/></r>", base, text_mode="ignore")
    pool = BufferPool()
    config = PagerConfig(pool=pool)
    pinned = ArbDatabase.open(base, pager=config)
    list(pinned.records_forward())
    loaded = pool.io.pages_read

    Database.open(base).apply(Relabel(1, "c"))

    # The pinned snapshot re-scans entirely from memory (its generation's
    # pages are still valid -- copy-on-write never touched its file)...
    assert [pinned.label_name(r) for r in pinned.records_forward()] == ["r", "a", "b"]
    assert pool.io.pages_read == loaded
    # ...while the new generation reads fresh pages under its own path key.
    current = ArbDatabase.open(base, pager=config)
    assert [current.label_name(r) for r in current.records_forward()] == ["r", "c", "b"]
    assert pool.io.pages_read > loaded
    paths = {key[0] for key in pool.cached_keys()}
    assert len(paths) == 2  # two generations, two disjoint key spaces


# --------------------------------------------------------------------------- #
# resolve_pager
# --------------------------------------------------------------------------- #


def test_resolve_pager_modes(monkeypatch):
    assert resolve_pager("buffered").pool is default_buffer_pool()
    assert resolve_pager("mmap").pool is None
    assert resolve_pager("buffered", pooled=False).pool is None
    monkeypatch.setenv("REPRO_PAGER_MODE", "mmap")
    assert resolve_pager().mode == "mmap"
    monkeypatch.delenv("REPRO_PAGER_MODE")
    assert resolve_pager().mode == "buffered"
    with pytest.raises(StorageError):
        resolve_pager("paged")
