"""Tests for caterpillar expressions and their NFA construction."""

from __future__ import annotations

from repro.tmnf.caterpillar import (
    Alt,
    Concat,
    Epsilon,
    Optional,
    Plus,
    Star,
    StepNFA,
    alternation,
    concat,
    expr_size,
    reverse_expr,
    step,
)


def _language_samples(nfa: StepNFA, max_length: int = 3) -> set[tuple[str, ...]]:
    """All words of length <= max_length accepted by the NFA (for small alphabets)."""
    alphabet = sorted({symbol.name for _s, symbol, _t in nfa.all_edges()})
    accepted: set[tuple[str, ...]] = set()

    def explore(state: int, word: tuple[str, ...]) -> None:
        if state in nfa.accepting:
            accepted.add(word)
        if len(word) == max_length:
            return
        for symbol, target in nfa.transitions.get(state, ()):
            explore(target, word + (symbol.name,))

    explore(nfa.initial, ())
    del alphabet
    return accepted


class TestStepConstruction:
    def test_step_normalises_binary_aliases(self):
        assert step("NextSibling").name == "SecondChild"
        assert step("invNextSibling").name == "invSecondChild"

    def test_step_normalises_unary_aliases(self):
        assert step("Leaf").name == "-HasFirstChild"
        assert step("LastSibling").name == "-HasSecondChild"

    def test_move_vs_test(self):
        assert step("FirstChild").is_move()
        assert step("invSecondChild").is_move()
        assert step("Label[a]").is_test()
        assert step("Root").is_test()
        assert step("V").is_test()


class TestSmartConstructors:
    def test_concat_flattens_and_drops_epsilon(self):
        expr = concat([Epsilon(), step("FirstChild"), concat([step("Label[a]")])])
        assert isinstance(expr, Concat)
        assert [p.name for p in expr.parts] == ["FirstChild", "Label[a]"]

    def test_concat_of_one_is_identity(self):
        single = step("FirstChild")
        assert concat([single]) is single

    def test_concat_of_nothing_is_epsilon(self):
        assert isinstance(concat([]), Epsilon)

    def test_alternation_flattens(self):
        expr = alternation([step("FirstChild"), alternation([step("SecondChild"), step("Root")])])
        assert isinstance(expr, Alt)
        assert len(expr.parts) == 3

    def test_expr_size(self):
        expr = concat([step("FirstChild"), Star(concat([step("Label[a]"), step("SecondChild")]))])
        assert expr_size(expr) == 3
        assert expr_size(Epsilon()) == 0


class TestReverse:
    def test_reverse_inverts_moves_and_order(self):
        expr = concat([step("FirstChild"), step("Label[a]"), step("SecondChild")])
        reversed_expr = reverse_expr(expr)
        assert [p.name for p in reversed_expr.parts] == [
            "invSecondChild",
            "Label[a]",
            "invFirstChild",
        ]

    def test_reverse_is_involutive(self):
        expr = Alt(
            (
                concat([step("FirstChild"), Star(step("SecondChild"))]),
                Plus(step("invFirstChild")),
            )
        )
        assert reverse_expr(reverse_expr(expr)) == expr


class TestNFA:
    def test_single_step(self):
        nfa = StepNFA.from_expr(step("FirstChild"))
        words = _language_samples(nfa, 2)
        assert ("FirstChild",) in words
        assert () not in words

    def test_concatenation(self):
        nfa = StepNFA.from_expr(concat([step("FirstChild"), step("Label[a]")]))
        words = _language_samples(nfa, 3)
        assert ("FirstChild", "Label[a]") in words
        assert ("FirstChild",) not in words

    def test_star_accepts_empty_and_repetitions(self):
        nfa = StepNFA.from_expr(Star(step("SecondChild")))
        words = _language_samples(nfa, 3)
        assert () in words
        assert ("SecondChild",) in words
        assert ("SecondChild", "SecondChild", "SecondChild") in words

    def test_plus_requires_at_least_one(self):
        nfa = StepNFA.from_expr(Plus(step("SecondChild")))
        words = _language_samples(nfa, 2)
        assert () not in words
        assert ("SecondChild",) in words and ("SecondChild", "SecondChild") in words

    def test_optional(self):
        nfa = StepNFA.from_expr(Optional(step("FirstChild")))
        words = _language_samples(nfa, 2)
        assert () in words and ("FirstChild",) in words
        assert ("FirstChild", "FirstChild") not in words

    def test_alternation(self):
        nfa = StepNFA.from_expr(alternation([step("FirstChild"), step("SecondChild")]))
        words = _language_samples(nfa, 1)
        assert ("FirstChild",) in words and ("SecondChild",) in words
        assert () not in words

    def test_w1_w2star_w3_language(self):
        """The regular-expression shape used throughout Section 6.2."""
        expr = concat(
            [
                step("Label[S]"),
                Star(concat([step("Label[NP]"), step("Label[PP]")])),
                step("Label[NP]"),
            ]
        )
        nfa = StepNFA.from_expr(expr)
        words = _language_samples(nfa, 5)
        assert ("Label[S]", "Label[NP]") in words
        assert ("Label[S]", "Label[NP]", "Label[PP]", "Label[NP]") in words
        assert ("Label[S]",) not in words

    def test_epsilon_expression(self):
        nfa = StepNFA.from_expr(Epsilon())
        assert nfa.initial in nfa.accepting

    def test_no_unreachable_states(self):
        expr = Alt((step("FirstChild"), concat([step("SecondChild"), step("Label[a]")])))
        nfa = StepNFA.from_expr(expr)
        reachable = {nfa.initial}
        frontier = [nfa.initial]
        while frontier:
            state = frontier.pop()
            for _symbol, target in nfa.transitions.get(state, ()):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        assert reachable == set(range(nfa.n_states))
