"""Tests for the XPath frontend: parser, translation, agreement with the
naive navigational evaluator and the streaming engine."""

from __future__ import annotations

import random

import pytest

from repro.baselines.xpath_naive import NaiveXPathEvaluator, evaluate_xpath_naive
from repro.core.two_phase import TwoPhaseEvaluator
from repro.errors import XPathSyntaxError, XPathUnsupportedError
from repro.streaming import StreamingEngine, StreamPathQuery, stream_select
from repro.tree import BinaryTree, parse_xml
from repro.xpath import parse_xpath, xpath_to_program
from repro.xpath.ast import PathCondition
from tests.conftest import random_unranked_tree

LIBRARY = (
    "<library>"
    "<shelf><book><title>a</title><author>x</author></book>"
    "<book><title>b</title></book></shelf>"
    "<shelf><dvd><title>c</title></dvd><book><note/></book></shelf>"
    "</library>"
)


def run_arb(document_or_tree, expression: str) -> list[int]:
    tree = (
        document_or_tree
        if isinstance(document_or_tree, BinaryTree)
        else BinaryTree.from_unranked(parse_xml(document_or_tree, text_mode="ignore"))
    )
    program = xpath_to_program(expression)
    return TwoPhaseEvaluator(program).evaluate(tree).selected["QUERY"]


def run_naive(document_or_tree, expression: str) -> list[int]:
    tree = (
        document_or_tree
        if isinstance(document_or_tree, BinaryTree)
        else BinaryTree.from_unranked(parse_xml(document_or_tree, text_mode="ignore"))
    )
    return evaluate_xpath_naive(tree, expression)


class TestParser:
    def test_absolute_and_abbreviated_syntax(self):
        path = parse_xpath("/library//book/title")
        assert path.absolute
        # '//' folds into the following child step as a descendant step.
        assert [s.axis for s in path.steps] == ["child", "descendant", "child"]
        assert [s.test for s in path.steps] == ["library", "book", "title"]

    def test_explicit_axes(self):
        path = parse_xpath("ancestor::shelf/following-sibling::*")
        assert [s.axis for s in path.steps] == ["ancestor", "following-sibling"]
        assert path.steps[1].test == "*"

    def test_predicates_parse(self):
        path = parse_xpath("//book[title and author]")
        assert len(path.steps[-1].predicates) == 1

    def test_dot_and_dotdot(self):
        path = parse_xpath("../.")
        assert [s.axis for s in path.steps] == ["parent", "self"]

    def test_nested_predicates(self):
        path = parse_xpath("//shelf[book[note]]")
        predicate = path.steps[-1].predicates[0]
        assert isinstance(predicate, PathCondition)

    def test_errors(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("")
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//book[")
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("//book[@id]")
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("//book[not(title)]")
        with pytest.raises(XPathUnsupportedError):
            parse_xpath("//book[count(title)]")


class TestTranslationAgainstNaive:
    EXPRESSIONS = [
        "/library",
        "/library/shelf/book",
        "//book",
        "//book/title",
        "//shelf//title",
        "//book[title]",
        "//book[title and author]",
        "//book[title or note]",
        "//shelf[book[note]]",
        "//title[parent::book]",
        "//*[ancestor::shelf]",
        "//book/following-sibling::*",
        "//book/preceding-sibling::book",
        "//title[ancestor-or-self::dvd]",
        "//note/ancestor::shelf",
        "shelf/book",
        "descendant::title",
        "//book[descendant::note or title]",
        "//*[self::dvd]",
        "//title[following::note]",
        "//note[preceding::title]",
    ]

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_fixed_document(self, expression):
        assert run_arb(LIBRARY, expression) == run_naive(LIBRARY, expression)

    def test_random_trees(self):
        rng = random.Random(11)
        expressions = ["//a", "//a/b", "//a[b]", "//b[ancestor::a]", "//a//c",
                       "//a/following-sibling::b", "//c[parent::a or parent::b]"]
        for _ in range(10):
            tree = BinaryTree.from_unranked(random_unranked_tree(rng, max_nodes=40))
            for expression in expressions:
                assert run_arb(tree, expression) == run_naive(tree, expression), expression

    def test_absolute_condition(self):
        # The condition /library/shelf/dvd holds for the document, so every
        # book qualifies.
        expression = "//book[/library/shelf/dvd]"
        assert run_arb(LIBRARY, expression) == run_naive(LIBRARY, expression)
        assert len(run_arb(LIBRARY, expression)) == 3

    def test_program_size_is_linear(self):
        small = xpath_to_program("//a/b")
        large = xpath_to_program("//a/b/c/d/e/f/g/h")
        # Six additional child steps; each contributes a bounded number of rules.
        extra_steps = 6
        per_step = (large.n_rules - small.n_rules) / extra_steps
        assert per_step <= 10


class TestNaiveEvaluator:
    def test_axes_document_semantics(self):
        tree = BinaryTree.from_unranked(parse_xml(LIBRARY, text_mode="ignore"))
        evaluator = NaiveXPathEvaluator(tree)
        shelf = tree.labels.index("shelf")
        assert all(tree.labels[c] in ("book", "dvd") for c in evaluator.axis(shelf, "child"))
        assert evaluator.axis(tree.root, "parent") == []
        title = tree.labels.index("title")
        assert tree.labels[evaluator.axis(title, "parent")[0]] == "book"

    def test_following_and_preceding_are_disjoint(self):
        tree = BinaryTree.from_unranked(parse_xml(LIBRARY, text_mode="ignore"))
        evaluator = NaiveXPathEvaluator(tree)
        for node in range(len(tree)):
            following = set(evaluator.axis(node, "following"))
            preceding = set(evaluator.axis(node, "preceding"))
            ancestors = set(evaluator.axis(node, "ancestor-or-self"))
            descendants = set(evaluator.axis(node, "descendant-or-self"))
            assert not (following & preceding)
            assert not (following & descendants)
            assert not (preceding & ancestors)


class TestStreaming:
    def test_matches_naive_on_downward_queries(self):
        for expression in ("//book", "/library/shelf/book", "//shelf//title", "//book/title"):
            expected = run_naive(LIBRARY, expression)
            tree = parse_xml(LIBRARY, text_mode="ignore")
            assert stream_select(tree, expression) == expected

    def test_single_pass_and_bounded_stack(self):
        tree = parse_xml(LIBRARY, text_mode="ignore")
        engine = StreamingEngine("//title")
        selected = engine.select_from_tree(tree)
        assert len(selected) == 3
        assert engine.max_stack_depth <= tree.depth() + 2

    def test_lazy_dfa_is_memoised(self):
        tree = parse_xml("<r>" + "<a><b/></a>" * 50 + "</r>", text_mode="ignore")
        engine = StreamingEngine("//a/b")
        engine.select_from_tree(tree)
        assert engine.dfa_transitions_computed < 10

    def test_rejects_unsupported_queries(self):
        with pytest.raises(XPathUnsupportedError):
            StreamPathQuery("//book[title]")
        with pytest.raises(XPathUnsupportedError):
            StreamPathQuery("//title/parent::book")
        with pytest.raises(XPathUnsupportedError):
            StreamPathQuery("book/title")  # relative: no anchor on a stream

    def test_streaming_agrees_with_arb_on_random_trees(self):
        rng = random.Random(23)
        for _ in range(10):
            unranked = random_unranked_tree(rng, max_nodes=50)
            tree = BinaryTree.from_unranked(unranked)
            for expression in ("//a", "//a//b", "/a/b/c"):
                assert stream_select(unranked, expression) == run_arb(tree, expression)
