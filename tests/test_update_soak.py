"""Concurrency soak: readers hammer queries while a writer applies updates.

The invariant under test is snapshot isolation at batch granularity: every
query batch -- a ``query_many`` scan pair, a coalesced service batch, a
per-document evaluation inside a collection query -- observes **exactly one
generation**.  The observable fingerprint of a generation is the pair
``(answer counts, batch .arb bytes read)``: the writer toggles the document
between two states whose node counts (and therefore file sizes and answer
counts) differ, so a batch that mixed generations would show a byte count
or a count/bytes pairing that belongs to neither state.  IOStatistics are
checked on every single batch; one torn observation fails the suite.
"""

from __future__ import annotations

import asyncio
import threading

from repro.collection import Collection
from repro.engine import Database
from repro.plan.cache import PlanCache
from repro.service import QueryService
from repro.storage.build import build_database
from repro.storage.update import DeleteSubtree, InsertSubtree

BOOKS = "QUERY :- V.Label[book];"
DVDS = "QUERY :- V.Label[dvd];"

#: The marker subtree the writer deletes and re-inserts (3 nodes).
MARKER = "<book><a/><b/></book>"

#: State 0 has the marker as the root's first child; state 1 does not.
PADDING = 40


def _document() -> str:
    return "<lib>" + MARKER + "<dvd/>" * PADDING + "<book/>" + "</lib>"


def _signatures(n_state0: int):
    """``(books, dvds, batch bytes)`` fingerprints of the two states."""
    size0 = n_state0 * 2
    size1 = (n_state0 - 3) * 2
    return {
        (2, PADDING, 2 * size0),  # marker present
        (1, PADDING, 2 * size1),  # marker deleted
    }


def _toggle_ops():
    """The writer's alternating operations: delete the marker, restore it."""
    while True:
        yield DeleteSubtree(1)
        yield InsertSubtree(0, MARKER, position=0)


def test_readers_always_observe_exactly_one_generation(tmp_path):
    base = str(tmp_path / "doc")
    build_database(_document(), base, text_mode="ignore")
    n0 = Database.open(base).n_nodes
    signatures = _signatures(n0)
    stop = threading.Event()
    torn: list[object] = []

    def reader():
        cache = PlanCache()  # plans must not be executed concurrently
        while not stop.is_set():
            database = Database.open(base)
            database.plan_cache = cache
            batch = database.query_many([BOOKS, DVDS], engine="disk",
                                        temp_dir=str(tmp_path))
            observed = (
                batch.results[0].count(),
                batch.results[1].count(),
                batch.arb_io.bytes_read,
            )
            if observed not in signatures or batch.arb_io.seeks != 2:
                torn.append((observed, batch.arb_io.seeks))
                return

    readers = [threading.Thread(target=reader) for _ in range(6)]
    for thread in readers:
        thread.start()
    writer = Database.open(base)
    ops = _toggle_ops()
    try:
        for _ in range(24):
            writer.apply(next(ops))
    finally:
        stop.set()
        for thread in readers:
            thread.join()
    assert not torn, f"torn observations: {torn}"
    assert writer.generation > 0


def test_service_batches_pin_one_generation_across_applies(tmp_path):
    base = str(tmp_path / "doc")
    build_database(_document(), base, text_mode="ignore")
    database = Database.open(base)
    signatures = _signatures(database.n_nodes)

    async def run() -> list[tuple]:
        observations: list[tuple] = []
        async with QueryService(database, window=0.002, max_batch=16,
                                temp_dir=str(tmp_path)) as service:

            async def client(n: int):
                for _ in range(n):
                    response = await service.submit(BOOKS)
                    dvds = await service.submit(DVDS)
                    observations.append(
                        (
                            response.count(),
                            dvds.count(),
                            response.batch_arb_io.bytes_read,
                            response.batch_arb_io.seeks,
                        )
                    )

            async def writer(n: int):
                ops = _toggle_ops()
                for _ in range(n):
                    await service.apply(next(ops))
                    await asyncio.sleep(0)

            await asyncio.gather(*(client(10) for _ in range(5)), writer(8))
            assert service.stats().updates == 8
        return observations

    observations = asyncio.run(run())
    assert len(observations) == 50
    for books, dvds, batch_bytes, seeks in observations:
        # Each response's batch I/O must fingerprint exactly one generation;
        # the books/dvds counts come from *different* batches, so only the
        # (books, bytes) pairing is batch-consistent by construction.
        assert seeks == 2
        assert any(
            books == sig_books and batch_bytes == sig_bytes
            for sig_books, _, sig_bytes in signatures
        ), (books, batch_bytes)
        assert dvds == PADDING  # padding is never touched by the writer


def test_collection_queries_pin_generations_per_document(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(_document(), doc_id="hot", text_mode="ignore")
    collection.add_document("<lib><book/><dvd/></lib>", doc_id="cold-1",
                            text_mode="ignore")
    collection.add_document("<lib><dvd/><dvd/></lib>", doc_id="cold-2",
                            text_mode="ignore")
    n0 = collection.manifest.get("hot").n_nodes
    hot_signatures = _signatures(n0)
    cold_bytes = {
        "cold-1": 2 * collection.manifest.get("cold-1").n_nodes * 2,
        "cold-2": 2 * collection.manifest.get("cold-2").n_nodes * 2,
    }
    stop = threading.Event()
    torn: list[object] = []

    def reader():
        while not stop.is_set():
            result = collection.query_many([BOOKS, DVDS], n_workers=2,
                                           temp_dir=str(tmp_path))
            for doc in result:
                observed = (
                    doc.results[0].count(),
                    doc.results[1].count(),
                    doc.arb_io.bytes_read,
                )
                if doc.doc_id == "hot":
                    consistent = observed in hot_signatures
                else:
                    consistent = observed[2] == cold_bytes[doc.doc_id]
                if not consistent or doc.arb_io.seeks != 2:
                    torn.append((doc.doc_id, observed, doc.arb_io.seeks))
                    return

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    ops = _toggle_ops()
    try:
        for _ in range(10):
            collection.apply("hot", next(ops))
    finally:
        stop.set()
        for thread in readers:
            thread.join()
    assert not torn, f"torn observations: {torn}"
    assert collection.manifest.get("hot").generation > 0
    assert collection.manifest.get("cold-1").generation == 0
