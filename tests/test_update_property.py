"""Property suite: splice updates == rebuild-from-scratch (`storage/update.py`).

For random documents and random update sequences, applying the updates
copy-on-write on disk must be observationally identical to rebuilding a
fresh database from the equivalently mutated in-memory tree
(:func:`~repro.storage.update.apply_to_tree`, the executable
specification):

* the decoded record stream (label names plus child/sibling flags) matches
  record for record -- the strongest structural equivalence the format has
  (raw bytes may differ only in label-index assignment order);
* disk query answers match for every probe query;
* the access-pattern counters (``pages_read`` / ``bytes_read`` / ``seeks``)
  of a disk batch on the updated generation match the rebuilt database
  exactly -- updates must not erode the paper's two-scan guarantee;
* a reader that opened before the update sequence still sees its snapshot.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database
from repro.storage.build import build_database
from repro.storage.database import ArbDatabase
from repro.storage.update import DeleteSubtree, InsertSubtree, Relabel, apply_to_tree

from tests.strategies import unranked_trees

LABELS = ("a", "b", "c")

PROBES = tuple(f"QUERY :- V.Label[{label}];" for label in LABELS) + (
    # A structural probe: the root's children (first child, then its whole
    # sibling chain) -- exercises the mutated shape, not just the labels.
    "A :- Root; QUERY :- A.FirstChild.SecondChild*;",
)


def _stream_of(database: ArbDatabase) -> list[tuple[str, bool, bool]]:
    return [
        (database.label_name(record), record.has_first_child, record.has_second_child)
        for record in database.records_forward()
    ]


def _record_stream(base: str, generation: int | None = None) -> list[tuple[str, bool, bool]]:
    return _stream_of(ArbDatabase.open(base, generation=generation))


def _draw_update(draw, mirror):
    """One random update valid against the current mirror tree."""
    nodes = list(mirror.iter_nodes())
    n = len(nodes)
    kinds = ["relabel", "insert"] + (["delete"] if n > 1 else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "relabel":
        return Relabel(draw(st.integers(0, n - 1)), draw(st.sampled_from(LABELS)))
    if kind == "delete":
        return DeleteSubtree(draw(st.integers(1, n - 1)))
    parent = draw(st.integers(0, n - 1))
    position = draw(st.integers(0, len(nodes[parent].children)))
    subtree = draw(unranked_trees(max_leaves=4))
    return InsertSubtree(parent, subtree, position=position)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_apply_equals_rebuild_from_scratch(data):
    tree = data.draw(unranked_trees(max_leaves=8))
    n_updates = data.draw(st.integers(1, 4))
    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "live")
        build_database(tree, base)
        database = Database.open(base)
        snapshot = Database.open(base)
        snapshot_stream = _record_stream(base)

        mirror = tree
        for _ in range(n_updates):
            update = _draw_update(data.draw, mirror)
            database.apply(update)
            mirror = apply_to_tree(mirror, update)

        rebuilt_base = os.path.join(tmp, "rebuilt")
        build_database(mirror, rebuilt_base)
        rebuilt = Database.open(rebuilt_base)

        # Identical decoded record streams: same labels, same structure.
        live_base = database.disk.base_path
        assert _record_stream(live_base) == _record_stream(rebuilt_base)
        assert database.n_nodes == mirror.node_count() == rebuilt.n_nodes

        # Same answers, same access pattern: one scan pair for the batch,
        # byte-for-byte equal counters against the from-scratch rebuild.
        live = database.query_many(PROBES, engine="disk", temp_dir=tmp)
        fresh = rebuilt.query_many(PROBES, engine="disk", temp_dir=tmp)
        for mine, theirs in zip(live.results, fresh.results):
            assert mine.selected_nodes() == theirs.selected_nodes()
        assert live.arb_io.pages_read == fresh.arb_io.pages_read
        assert live.arb_io.bytes_read == fresh.arb_io.bytes_read
        assert live.arb_io.seeks == fresh.arb_io.seeks == 2

        # The pre-update snapshot still reads generation 0, untouched --
        # both through the long-lived pinned handle and through a fresh
        # explicitly pinned open.
        assert snapshot.generation == 0
        assert _stream_of(snapshot.disk) == snapshot_stream
        assert _record_stream(base, generation=0) == snapshot_stream


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_apply_to_tree_is_pure(data):
    """The mirror never mutates its input (updates are value semantics)."""
    tree = data.draw(unranked_trees(max_leaves=6))
    frozen = tree.to_nested()
    update = _draw_update(data.draw, tree)
    mutated = apply_to_tree(tree, update)
    assert tree.to_nested() == frozen
    if isinstance(update, Relabel):
        assert mutated.node_count() == tree.node_count()
