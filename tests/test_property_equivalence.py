"""Property-based equivalence of the three evaluation strategies.

The central correctness claim of the reproduction: for every TMNF program and
every tree, the two-phase tree-automata evaluation (Algorithm 4.6) computes
exactly the least-model semantics, i.e. it agrees with

* the semi-naive datalog fixpoint evaluator, and
* the explicit STA (Definition 3.2) selection criterion.

Hypothesis generates random trees and random TMNF programs over a small
signature; a program generator that only produced well-known shapes would
miss interaction bugs between up/down/local rules, so rules are drawn freely
from all four templates.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.baselines.datalog import evaluate_fixpoint
from repro.core.sta import SelectingTreeAutomaton
from repro.core.two_phase import TwoPhaseEvaluator
from repro.tmnf import TMNFProgram
from tests.strategies import binary_trees as trees, tmnf_programs


def programs():
    return tmnf_programs(max_rules=8)


COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #


@given(program=programs(), tree=trees())
@settings(max_examples=120, **COMMON_SETTINGS)
def test_two_phase_matches_fixpoint(program, tree):
    query = program.query_predicates[0]
    automata = TwoPhaseEvaluator(program).evaluate(tree, keep_true_predicates=True)
    fixpoint = evaluate_fixpoint(program, tree)
    assert automata.selected[query] == fixpoint.selected[query]
    for node in range(len(tree)):
        assert automata.true_predicates[node] == frozenset(fixpoint.true_predicates[node])


@given(program=programs(), tree=trees(max_leaves=5))
@settings(max_examples=40, **COMMON_SETTINGS)
def test_two_phase_matches_explicit_sta(program, tree):
    """Theorem 4.1 + Proposition 3.3: the deterministic two-phase evaluation
    implements the STA selection criterion."""
    query = program.query_predicates[0]
    automata = TwoPhaseEvaluator(program).evaluate(tree)
    sta = SelectingTreeAutomaton(program, query)
    assert automata.selected[query] == sta.evaluate(tree)


@given(program=programs(), tree=trees())
@settings(max_examples=60, **COMMON_SETTINGS)
def test_evaluation_is_deterministic(program, tree):
    first = TwoPhaseEvaluator(program).evaluate(tree)
    second = TwoPhaseEvaluator(program).evaluate(tree)
    assert first.selected == second.selected


@given(tree=trees())
@settings(max_examples=60, **COMMON_SETTINGS)
def test_even_odd_partition_property(tree):
    """On any tree, Example 2.2 assigns exactly one of Even/Odd to every node."""
    from tests.conftest import EVEN_ODD_EXAMPLE

    program = TMNFProgram.parse(EVEN_ODD_EXAMPLE, query_predicates=("Even", "Odd"))
    result = TwoPhaseEvaluator(program).evaluate(tree)
    even = set(result.selected["Even"])
    odd = set(result.selected["Odd"])
    assert even | odd == set(range(len(tree)))
    assert not (even & odd)
