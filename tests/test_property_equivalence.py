"""Property-based equivalence of the three evaluation strategies.

The central correctness claim of the reproduction: for every TMNF program and
every tree, the two-phase tree-automata evaluation (Algorithm 4.6) computes
exactly the least-model semantics, i.e. it agrees with

* the semi-naive datalog fixpoint evaluator, and
* the explicit STA (Definition 3.2) selection criterion.

Hypothesis generates random trees and random TMNF programs over a small
signature; a program generator that only produced well-known shapes would
miss interaction bugs between up/down/local rules, so rules are drawn freely
from all four templates.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.datalog import evaluate_fixpoint
from repro.core.sta import SelectingTreeAutomaton
from repro.core.two_phase import TwoPhaseEvaluator
from repro.tmnf import TMNFProgram
from repro.tmnf.ast import DownRule, LocalRule, UpRule
from repro.tree import BinaryTree, UnrankedTree

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

LABELS = ("a", "b")
IDB_NAMES = ("X0", "X1", "X2", "X3")
EDB_ATOMS = (
    "Root",
    "-Root",
    "HasFirstChild",
    "-HasFirstChild",
    "HasSecondChild",
    "-HasSecondChild",
    "Label[a]",
    "-Label[a]",
    "Label[b]",
)


def trees(max_leaves: int = 10):
    label = st.sampled_from(LABELS)
    nested = st.recursive(
        label,
        lambda children: st.tuples(label, st.lists(children, max_size=3)),
        max_leaves=max_leaves,
    )
    return nested.map(lambda spec: BinaryTree.from_unranked(UnrankedTree.from_nested(spec)))


def local_rules():
    return st.builds(
        LocalRule,
        head=st.sampled_from(IDB_NAMES),
        body=st.tuples(st.sampled_from(IDB_NAMES + EDB_ATOMS))
        | st.tuples(st.sampled_from(IDB_NAMES + EDB_ATOMS), st.sampled_from(IDB_NAMES + EDB_ATOMS)),
    )


def down_rules():
    return st.builds(
        DownRule,
        head=st.sampled_from(IDB_NAMES),
        body_pred=st.sampled_from(IDB_NAMES),
        relation=st.sampled_from(("FirstChild", "SecondChild")),
    )


def up_rules():
    return st.builds(
        UpRule,
        head=st.sampled_from(IDB_NAMES),
        body_pred=st.sampled_from(IDB_NAMES),
        relation=st.sampled_from(("FirstChild", "SecondChild")),
    )


def programs():
    rule = st.one_of(local_rules(), down_rules(), up_rules())
    # Always include one seeding rule so that programs are not vacuously empty.
    seed = st.builds(
        LocalRule,
        head=st.sampled_from(IDB_NAMES),
        body=st.sampled_from([("Label[a]",), ("Root",), ("-HasFirstChild",), ()]),
    )
    return st.tuples(seed, st.lists(rule, min_size=1, max_size=8)).map(
        lambda pair: TMNFProgram.from_rules(
            [pair[0], *pair[1]], query_predicates=pair[0].head
        )
    )


COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #


@given(program=programs(), tree=trees())
@settings(max_examples=120, **COMMON_SETTINGS)
def test_two_phase_matches_fixpoint(program, tree):
    query = program.query_predicates[0]
    automata = TwoPhaseEvaluator(program).evaluate(tree, keep_true_predicates=True)
    fixpoint = evaluate_fixpoint(program, tree)
    assert automata.selected[query] == fixpoint.selected[query]
    for node in range(len(tree)):
        assert automata.true_predicates[node] == frozenset(fixpoint.true_predicates[node])


@given(program=programs(), tree=trees(max_leaves=5))
@settings(max_examples=40, **COMMON_SETTINGS)
def test_two_phase_matches_explicit_sta(program, tree):
    """Theorem 4.1 + Proposition 3.3: the deterministic two-phase evaluation
    implements the STA selection criterion."""
    query = program.query_predicates[0]
    automata = TwoPhaseEvaluator(program).evaluate(tree)
    sta = SelectingTreeAutomaton(program, query)
    assert automata.selected[query] == sta.evaluate(tree)


@given(program=programs(), tree=trees())
@settings(max_examples=60, **COMMON_SETTINGS)
def test_evaluation_is_deterministic(program, tree):
    first = TwoPhaseEvaluator(program).evaluate(tree)
    second = TwoPhaseEvaluator(program).evaluate(tree)
    assert first.selected == second.selected


@given(tree=trees())
@settings(max_examples=60, **COMMON_SETTINGS)
def test_even_odd_partition_property(tree):
    """On any tree, Example 2.2 assigns exactly one of Even/Odd to every node."""
    from tests.conftest import EVEN_ODD_EXAMPLE

    program = TMNFProgram.parse(EVEN_ODD_EXAMPLE, query_predicates=("Even", "Odd"))
    result = TwoPhaseEvaluator(program).evaluate(tree)
    even = set(result.selected["Even"])
    odd = set(result.selected["Odd"])
    assert even | odd == set(range(len(tree)))
    assert not (even & odd)
