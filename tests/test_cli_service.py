"""End-to-end smoke tests of ``arb serve`` and ``arb client``.

``arb serve`` runs as a real subprocess (ephemeral port, discovered through
``--ready-file``); ``arb client`` runs in-process so its output and exit
codes can be asserted.  The burst the client sends must coalesce on the
server into one scan pair.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.collection import Collection
from repro.engine import Database
from repro.plan.cache import PlanCache
from repro.service.server import open_target
from repro.storage.build import build_database

REPO_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
DOCUMENT = "<lib><book><t>x</t></book><book><t>y</t></book><dvd/></lib>"


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live ``arb serve`` subprocess over a freshly built document."""
    directory = tmp_path_factory.mktemp("serve")
    base = str(directory / "doc")
    build_database(DOCUMENT, base)
    ready = directory / "ready.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", base,
            "--port", "0", "--ready-file", str(ready), "--window", "0.05",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        while not ready.exists() or not ready.read_text().strip():
            if process.poll() is not None:
                raise RuntimeError(
                    f"arb serve exited early:\n{process.stdout.read()}"
                )
            if time.monotonic() > deadline:
                raise RuntimeError("arb serve did not become ready in 30s")
            time.sleep(0.05)
        host, port = ready.read_text().split()
        yield host, int(port)
    finally:
        process.terminate()
        process.wait(timeout=10)


@pytest.mark.timeout(60)
def test_client_burst_coalesces_on_server(served, capsys):
    host, port = served
    exit_code = main([
        "client", "--host", host, "--port", str(port),
        "-q", "QUERY :- V.Label[book];", "--repeat", "3", "--stats",
    ])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert output.count("2 selected") == 3
    assert "batch of 3 (coalesced)" in output
    # The whole burst cost one scan pair of the document's .arb file.
    assert "2 arb pages for the batch" in output
    assert "service counters:" in output


@pytest.mark.timeout(60)
def test_client_mixed_languages_and_ids(served, capsys):
    host, port = served
    exit_code = main([
        "client", "--host", host, "--port", str(port),
        "-x", "//t", "--ids",
    ])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "2 selected" in output


@pytest.mark.timeout(60)
def test_client_surfaces_query_errors_with_exit_code(served, capsys):
    host, port = served
    exit_code = main([
        "client", "--host", host, "--port", str(port),
        "-q", "THIS IS NOT A PROGRAM",
    ])
    output = capsys.readouterr().out
    assert exit_code == 1
    assert "error" in output


@pytest.mark.timeout(60)
def test_inprocess_server_protocol(tmp_path):
    """The JSON-lines protocol, exercised against an in-process ArbServer."""
    import asyncio

    from repro.service import ArbServer, request_many

    base = str(tmp_path / "doc")
    build_database(DOCUMENT, base)
    database = Database.open(base)
    database.plan_cache = PlanCache()

    async def main():
        async with ArbServer(database, window=0.05) as server:
            answers = await request_many(server.host, server.port, [
                {"query": "QUERY :- V.Label[book];"},
                {"query": "//t", "language": "xpath", "ids": True},
                {"query": "NOT A PROGRAM"},
                {"op": "ping"},
                {"op": "no-such-op"},
                {"not-even": "a query"},
            ])
            stats = await request_many(
                server.host, server.port, [{"op": "stats"}]
            )
            return answers, stats[0]

    answers, stats = asyncio.run(main())
    books, xpath, bad, ping, bad_op, not_query = answers
    assert books["ok"] and books["count"] == 2
    # The two good queries coalesced into one scan pair on the server.
    assert books["batch_size"] == 2 and books["coalesced"]
    assert books["arb_pages_read"] == 2
    assert xpath["ok"] and xpath["count"] == 2
    assert xpath["selected"] == {"": xpath["selected"][""]}
    assert len(xpath["selected"][""]) == 2
    assert not bad["ok"] and bad["error_type"] == "TMNFSyntaxError"
    assert ping["ok"] and ping["pong"]
    assert not bad_op["ok"]
    assert not not_query["ok"]
    assert stats["ok"] and stats["stats"]["completed"] == 2
    assert stats["stats"]["batches"] == 1


@pytest.mark.timeout(30)
def test_request_many_survives_colliding_client_ids(tmp_path):
    """Caller ids that collide with the wire defaults must not hang the client."""
    import asyncio

    from repro.service import ArbServer, request_many

    base = str(tmp_path / "doc")
    build_database(DOCUMENT, base)
    database = Database.open(base)
    database.plan_cache = PlanCache()

    async def main():
        async with ArbServer(database, window=0.02) as server:
            return await request_many(server.host, server.port, [
                {"query": "QUERY :- V.Label[book];"},
                {"query": "QUERY :- V.Label[dvd];", "id": 0},  # collides
                {"query": "QUERY :- V.Label[t];", "id": 0},    # twice
            ])

    books, dvds, titles = asyncio.run(main())
    assert (books["count"], dvds["count"], titles["count"]) == (2, 1, 2)
    # The caller's ids are echoed back, the anonymous one keeps its index.
    assert (books["id"], dvds["id"], titles["id"]) == (0, 0, 0)


@pytest.mark.timeout(60)
def test_inprocess_server_collection_target(tmp_path):
    import asyncio

    from repro.service import ArbServer, request_many

    root = str(tmp_path / "served-corpus")
    collection = Collection.create(root, plan_cache=PlanCache())
    for index in range(2):
        collection.add_document(DOCUMENT, doc_id=f"doc-{index}")

    async def main():
        async with ArbServer(collection, window=0.02) as server:
            return await request_many(server.host, server.port, [
                {"query": "QUERY :- V.Label[book];", "ids": True},
            ])

    (answer,) = asyncio.run(main())
    assert answer["ok"] and answer["count"] == 4
    assert set(answer["selected"]) == {"doc-0", "doc-1"}


def test_open_target_dispatch(tmp_path):
    xml_path = tmp_path / "doc.xml"
    xml_path.write_text(DOCUMENT, encoding="utf-8")
    assert isinstance(open_target(str(xml_path)), Database)

    base = str(tmp_path / "doc")
    build_database(DOCUMENT, base)
    target = open_target(base)
    assert isinstance(target, Database) and target.is_on_disk

    root = str(tmp_path / "corpus")
    collection = Collection.create(root, plan_cache=PlanCache())
    collection.add_document(DOCUMENT, doc_id="one")
    assert isinstance(open_target(root), Collection)
