"""Unit behaviour of the copy-on-write update subsystem (`storage/update.py`).

Pinned here: the splice arithmetic of every operation (relabel, delete,
insert at every child position), generation-pointer mechanics (snapshots,
refresh, pruning, backward compatibility with pointer-less databases), the
per-generation analysis cache, collection-level updates through the
manifest, and the ``arb update`` / ``arb stats`` CLI verbs.  The crash,
property and soak suites build on these basics.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.collection import Collection
from repro.engine import Database
from repro.errors import StorageError
from repro.storage.build import build_database
from repro.storage.database import ArbDatabase
from repro.storage.generations import (
    list_generations,
    prune_generations,
    read_pointer,
    resolve_generation,
)
from repro.storage.update import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_to_tree,
    apply_update,
)
from repro.tree.xml_io import parse_xml

DOC = "<lib><book><a/><b/></book><dvd/><book/></lib>"
# Pre-order ids: lib=0, book=1, a=2, b=3, dvd=4, book=5.

BOOKS = "QUERY :- V.Label[book];"


def _build(tmp_path, xml: str = DOC, name: str = "doc") -> str:
    base = str(tmp_path / name)
    build_database(xml, base, text_mode="ignore")
    return base


def _labels_and_flags(base: str) -> list[tuple[str, bool, bool]]:
    """The decoded record stream: the full observable content of a generation."""
    database = ArbDatabase.open(base)
    return [
        (database.label_name(record), record.has_first_child, record.has_second_child)
        for record in database.records_forward()
    ]


# --------------------------------------------------------------------------- #
# Relabel
# --------------------------------------------------------------------------- #


def test_relabel_changes_one_node_and_nothing_else(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    before = _labels_and_flags(base)
    result = db.apply(Relabel(4, "book"))
    assert db.query(BOOKS, engine="disk").count() == 3
    after = _labels_and_flags(base)
    assert after[4][0] == "book"
    assert [row[1:] for row in after] == [row[1:] for row in before]  # flags intact
    assert result.statistics.records_reencoded == 1
    assert result.old_generation == 0
    assert result.new_generation == db.generation > 0


def test_relabel_registers_new_tag(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply(Relabel(4, "magazine"))
    assert db.query("QUERY :- V.Label[magazine];", engine="disk").count() == 1
    assert db.label(4) == "magazine"


def test_relabel_text_character(tmp_path):
    base = str(tmp_path / "doc")
    build_database("<r>x</r>", base, text_mode="chars")
    db = Database.open(base)
    db.apply(Relabel(1, "y", is_text=True))
    assert db.query("QUERY :- V.Label[y];", engine="disk").count() == 1
    assert db.disk.char_nodes == 1 and db.disk.element_nodes == 1


def test_consecutive_relabels_hit_the_analysis_cache(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    first = db.apply(Relabel(4, "book"))
    second = db.apply(Relabel(2, "c"))
    assert not first.statistics.analysis_cache_hit
    assert second.statistics.analysis_cache_hit  # derived from the relabel
    assert second.statistics.io.seeks < first.statistics.io.seeks  # no rescan


# --------------------------------------------------------------------------- #
# Delete
# --------------------------------------------------------------------------- #


def test_delete_subtree_with_following_sibling(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply(DeleteSubtree(1))  # first <book> incl. children; <dvd> slides in
    assert db.n_nodes == 3
    assert _labels_and_flags(base) == [
        ("lib", True, False),
        ("dvd", False, True),
        ("book", False, False),
    ]


def test_delete_last_child_clears_sibling_flag(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply(DeleteSubtree(5))  # the trailing <book/>: dvd loses its sibling flag
    assert _labels_and_flags(base) == [
        ("lib", True, False),
        ("book", True, True),
        ("a", False, True),
        ("b", False, False),
        ("dvd", False, False),
    ]


def test_delete_only_child_clears_parent_flag(tmp_path):
    base = _build(tmp_path, xml="<r><a><b/></a></r>")
    db = Database.open(base)
    db.apply(DeleteSubtree(2))
    assert _labels_and_flags(base) == [("r", True, False), ("a", False, False)]


def test_delete_root_is_rejected(tmp_path):
    base = _build(tmp_path)
    with pytest.raises(StorageError, match="root"):
        apply_update(base, DeleteSubtree(0))
    assert read_pointer(base).generation == 0  # nothing happened


def test_delete_out_of_range_is_rejected_before_any_write(tmp_path):
    def database_files():
        # Ignore the writers' advisory .lock sidecar: it is not data.
        return [name for name in sorted(os.listdir(tmp_path))
                if not name.endswith(".lock")]

    base = _build(tmp_path)
    files_before = database_files()
    with pytest.raises(StorageError, match="out of range"):
        apply_update(base, DeleteSubtree(99))
    assert database_files() == files_before


# --------------------------------------------------------------------------- #
# Insert
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("position", [0, 1, 2, 3, None])
def test_insert_at_every_child_position_matches_the_tree_mirror(tmp_path, position):
    base = _build(tmp_path)
    db = Database.open(base)
    op = InsertSubtree(0, "<cd><track/></cd>", position=position)
    db.apply(op)
    mirror = apply_to_tree(parse_xml(DOC, text_mode="ignore"), op)
    build_database(mirror, str(tmp_path / "mirror"))
    assert _labels_and_flags(base) == _labels_and_flags(str(tmp_path / "mirror"))
    assert db.n_nodes == 8


def test_insert_into_leaf_sets_first_child_flag(tmp_path):
    base = _build(tmp_path, xml="<r><a/></r>")
    db = Database.open(base)
    db.apply(InsertSubtree(1, "<b/>"))
    assert _labels_and_flags(base) == [
        ("r", True, False),
        ("a", True, False),
        ("b", False, False),
    ]


def test_insert_position_out_of_range(tmp_path):
    base = _build(tmp_path)
    with pytest.raises(StorageError, match="position"):
        apply_update(base, InsertSubtree(0, "<x/>", position=4))


def test_insert_tree_source(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply(InsertSubtree(4, parse_xml("<region/>", text_mode="ignore")))
    assert db.label(5) == "region"


# --------------------------------------------------------------------------- #
# Generations, snapshots, refresh, pruning
# --------------------------------------------------------------------------- #


def test_open_handles_are_snapshots(tmp_path):
    base = _build(tmp_path)
    old = Database.open(base)
    writer = Database.open(base)
    writer.apply(Relabel(4, "book"))
    # The handle opened before the update still answers from its snapshot...
    assert old.query(BOOKS, engine="disk").count() == 2
    assert old.generation == 0
    # ...new opens and the writer see the new generation...
    assert Database.open(base).query(BOOKS, engine="disk").count() == 3
    # ...and refresh moves the old handle forward.
    old.refresh()
    assert old.generation == writer.generation
    assert old.query(BOOKS, engine="disk").count() == 3


def test_pinned_generation_open(tmp_path):
    base = _build(tmp_path)
    Database.open(base).apply(Relabel(4, "book"))
    gen, _ = resolve_generation(base)
    pinned = Database.open(base, generation=0)
    assert pinned.query(BOOKS, engine="disk").count() == 2
    assert Database.open(base, generation=gen).query(BOOKS, engine="disk").count() == 3


def test_apply_sequence_advances_one_generation_per_op(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    results = db.apply([Relabel(4, "book"), DeleteSubtree(5), InsertSubtree(0, "<cd/>")])
    assert [r.old_generation for r in results[1:]] == [r.new_generation for r in results[:-1]]
    assert db.generation == results[-1].new_generation
    assert len(list_generations(base)) == 4  # generation 0 plus three updates


def test_counter_survives_rebuild_and_never_reuses_generation_numbers(tmp_path):
    base = _build(tmp_path)
    apply_update(base, Relabel(4, "book"))
    counter_before = read_pointer(base).counter
    build_database(DOC, base, text_mode="ignore")  # rebuild in place
    pointer = read_pointer(base)
    assert pointer.generation == 0
    assert pointer.counter == counter_before + 1
    # The rebuild started a fresh lineage: the superseded generation files
    # are gone, so they can never be mistaken for this document's history.
    assert list_generations(base) == [0]
    result = apply_update(base, Relabel(4, "book"))
    assert result.new_generation > counter_before  # numbers never recycled


def test_concurrent_writers_serialize(tmp_path):
    import threading

    base = _build(tmp_path)
    errors: list[BaseException] = []

    def writer(labels):
        try:
            for label in labels:
                apply_update(base, Relabel(4, label))
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(["m", "n", "o"],)),
        threading.Thread(target=writer, args=(["p", "q", "r"],)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Every apply landed its own generation: 6 updates after the build.
    pointer = read_pointer(base)
    assert pointer.counter == 1 + 6
    database = Database.open(base)
    assert database.n_nodes == 6
    assert database.label(4) in {"o", "r"}  # one writer's last word


def test_stale_handle_apply_is_refused(tmp_path):
    base = _build(tmp_path)
    first = Database.open(base)
    second = Database.open(base)
    first.apply(InsertSubtree(0, "<cd/>", position=0))  # ids shift by one
    # Second's node ids were derived from generation 0; applying them blind
    # would mutate the wrong node, so the conflict is refused instead.
    with pytest.raises(StorageError, match="conflict"):
        second.apply(Relabel(4, "book"))
    second.refresh()
    second.apply(Relabel(5, "book"))  # the dvd, at its post-insert id
    assert Database.open(base).query(BOOKS, engine="disk").count() == 3


def test_rebuild_is_detected_by_refresh_and_apply(tmp_path):
    # An in-place rebuild keeps the generation number at 0 but rewrites the
    # files; the change counter betrays it to stale handles.
    base = _build(tmp_path)
    handle = Database.open(base)
    build_database("<lib><zine/></lib>", base, text_mode="ignore")
    with pytest.raises(StorageError, match="conflict"):
        handle.apply(Relabel(1, "book"))  # ids belong to the old document
    handle.refresh()
    assert handle.n_nodes == 2
    assert handle.label(1) == "zine"
    handle.apply(Relabel(1, "book"))
    assert handle.query(BOOKS, engine="disk").count() == 1


def test_update_through_generation_suffixed_path_advances_the_base(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply(Relabel(4, "book"))
    # Updating via the physical generation base (what db.disk.base_path is)
    # must advance the logical base, never fork a private lineage.
    result = apply_update(db.disk.base_path, Relabel(2, "book"))
    assert result.base_path == base
    assert Database.open(base).query(BOOKS, engine="disk").count() == 4
    assert not os.path.exists(db.disk.base_path + ".gen")


def test_rebuild_waits_for_writer_lock(tmp_path):
    # A rebuild and an update use one writer lock per base: their change
    # counters can never collide.
    base = _build(tmp_path)
    apply_update(base, Relabel(4, "x"))
    counter = read_pointer(base).counter
    build_database(DOC, base, text_mode="ignore")
    assert read_pointer(base).counter == counter + 1


def test_collection_apply_sequence_failure_keeps_manifest_current(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    with pytest.raises(StorageError, match="out of range"):
        collection.apply("one", [Relabel(4, "book"), DeleteSubtree(99)])
    # The first operation landed and the manifest points at it -- collection
    # queries and direct opens agree on the document's current state.
    entry = collection.manifest.get("one")
    assert entry.generation == read_pointer(entry.base_path(root)).generation > 0
    assert collection.query(BOOKS).count() == 3


def test_prune_keeps_current_and_generation_zero(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    db.apply([Relabel(4, "x"), Relabel(4, "y"), Relabel(4, "z")])
    current = db.generation
    deleted = prune_generations(base, retain=1)
    remaining = list_generations(base)
    assert current in remaining and 0 in remaining
    assert all(gen not in remaining for gen in deleted)
    assert db.query("QUERY :- V.Label[z];", engine="disk").count() == 1


def test_retain_generations_on_apply(tmp_path):
    base = _build(tmp_path)
    db = Database.open(base)
    for label in ("u", "v", "w", "x"):
        db.apply(Relabel(4, label), retain_generations=2)
    assert len(list_generations(base)) == 3  # gen 0 + current + one predecessor


def test_pointerless_databases_keep_working(tmp_path):
    base = _build(tmp_path)
    os.remove(base + ".gen")  # a database from before the update era
    db = Database.open(base)
    assert db.generation == 0
    assert db.query(BOOKS, engine="disk").count() == 2
    db.apply(Relabel(4, "book"))  # first update bootstraps the pointer
    assert db.query(BOOKS, engine="disk").count() == 3


def test_update_may_not_empty_the_database(tmp_path):
    base = str(tmp_path / "doc")
    build_database("<r/>", base, text_mode="ignore")
    with pytest.raises(StorageError):
        apply_update(base, DeleteSubtree(0))


def test_meta_records_lineage(tmp_path):
    base = _build(tmp_path)
    result = apply_update(base, Relabel(4, "book"))
    _, gen_base = resolve_generation(base)
    with open(gen_base + ".meta", "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    assert meta["generation"] == result.new_generation
    assert meta["parent_generation"] == 0
    assert meta["counter"] == result.counter
    assert meta["n_nodes"] == 6


def test_plan_cache_hits_survive_updates_with_correct_answers(tmp_path):
    # Plans are document-independent: the same cached plan must keep
    # answering correctly across generations (this is why plan-cache keys
    # need no generation component, unlike page and analysis caches).
    base = _build(tmp_path)
    db = Database.open(base)
    first = db.query(BOOKS, engine="disk")
    assert first.statistics.plan_cache_misses + first.statistics.plan_cache_hits == 1
    db.apply(Relabel(4, "book"))
    second = db.query(BOOKS, engine="disk")
    assert second.statistics.plan_cache_hits == 1
    assert second.count() == 3


# --------------------------------------------------------------------------- #
# Collections
# --------------------------------------------------------------------------- #


def test_collection_apply_advances_manifest_and_answers(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    collection.add_document("<lib><book/></lib>", doc_id="two", text_mode="ignore")
    before = collection.query(BOOKS).count()
    result = collection.apply("one", Relabel(4, "book"))
    entry = collection.manifest.get("one")
    assert entry.generation == result.new_generation
    assert entry.n_nodes == 6
    assert collection.query(BOOKS).count() == before + 1
    # A collection handle opened before the update pinned the old manifest
    # generations -- its answers are a consistent pre-update snapshot.
    reopened = Collection.open(root)
    assert reopened.query(BOOKS).count() == before + 1  # reads the saved manifest
    assert reopened.manifest.get("one").generation == result.new_generation


def test_collection_snapshot_isolation_across_open_handles(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    old_handle = Collection.open(root)
    collection.apply("one", Relabel(4, "book"))
    # The old handle's manifest still pins generation 0 for the document.
    assert old_handle.query(BOOKS).count() == 2
    assert collection.query(BOOKS).count() == 3


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def test_cli_update_relabel_and_stats(tmp_path, capsys):
    base = _build(tmp_path)
    assert cli_main(["update", base, "--relabel", "4", "book"]) == 0
    out = capsys.readouterr().out
    assert "generation      : 0 ->" in out
    assert "1 records re-encoded" in out
    assert cli_main(["stats", base]) == 0
    out = capsys.readouterr().out
    assert "generation   :" in out and "change counter" in out
    assert Database.open(base).query(BOOKS, engine="disk").count() == 3


def test_cli_update_delete_insert_and_retain(tmp_path, capsys):
    base = _build(tmp_path)
    assert cli_main(["update", base, "--delete", "5"]) == 0
    fragment = tmp_path / "fragment.xml"
    fragment.write_text("<cd><track/></cd>", encoding="utf-8")
    assert cli_main(["update", base, "--insert", "0", str(fragment),
                     "--at", "0", "--retain", "1"]) == 0
    capsys.readouterr()
    db = Database.open(base)
    assert db.label(1) == "cd"
    assert db.n_nodes == 7
    assert len(list_generations(base)) == 2  # gen 0 + current only


def test_cli_update_error_reports_cleanly(tmp_path, capsys):
    base = _build(tmp_path)
    assert cli_main(["update", base, "--delete", "0"]) == 1
    assert "error:" in capsys.readouterr().err
    # A non-numeric node id is a clean CLI error too, not a traceback.
    assert cli_main(["update", base, "--relabel", "x", "book"]) == 1
    assert "node id" in capsys.readouterr().err


def test_database_named_like_a_generation_is_its_own_base(tmp_path):
    # A base that merely *looks* like a generation file ("snapshot.g2") with
    # no parent base on disk is treated as its own logical database.
    base = str(tmp_path / "snapshot.g2")
    build_database(DOC, base, text_mode="ignore")
    db = Database.open(base)
    assert db.generation == 0
    assert db.disk.logical_base_path == base
    db.apply(Relabel(4, "book"))  # updates work against its own pointer
    assert Database.open(base).query(BOOKS, engine="disk").count() == 3
