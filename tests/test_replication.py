"""Unit and in-process tests of the generation-shipping replication tier.

Covers the consistent-hash ring, the export/install snapshot round-trip,
the primary's replication wire ops, the router's routing and failover
behaviour, and the service-layer bugfixes that rode along (id-less reply
handling in ``request_many``, the ``open_target`` directory diagnostic).
The multi-process kill/restart soak lives in ``test_replication_soak.py``.
"""

from __future__ import annotations

import asyncio
import base64
import glob
import json
import shutil

import pytest

from repro.engine import Database
from repro.errors import ServiceError, StorageError
from repro.plan.cache import PlanCache
from repro.replication import ArbRouter, ConsistentHashRing, ReplicaSet
from repro.service import ArbServer, request_many
from repro.service.server import open_target
from repro.storage.build import build_database
from repro.storage.generations import (
    export_generation,
    install_generation,
    read_pointer,
)
from repro.storage.update import Relabel

DOCUMENT = "<lib><book><t>x</t></book><book><t>y</t></book><dvd/></lib>"


# --------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------- #


def test_hashring_is_deterministic_across_instances():
    nodes = ["10.0.0.1:8723", "10.0.0.2:8723", "10.0.0.3:8723"]
    ring_a = ConsistentHashRing(nodes)
    ring_b = ConsistentHashRing(reversed(nodes))
    keys = [f"doc-{i}" for i in range(200)]
    assert [ring_a.owner(k) for k in keys] == [ring_b.owner(k) for k in keys]


def test_hashring_minimal_movement_on_node_removal():
    nodes = [f"replica-{i}" for i in range(4)]
    ring = ConsistentHashRing(nodes)
    keys = [f"doc-{i}" for i in range(400)]
    before = {k: ring.owner(k) for k in keys}
    ring.remove("replica-2")
    after = {k: ring.owner(k) for k in keys}
    # Keys owned by survivors must not move; the removed node's keys spread.
    for key in keys:
        if before[key] != "replica-2":
            assert after[key] == before[key]
        else:
            assert after[key] != "replica-2"
    moved = sum(1 for k in keys if before[k] != after[k])
    assert 0 < moved < len(keys) / 2  # roughly 1/4 of the keyspace


def test_hashring_add_back_restores_ownership():
    nodes = [f"replica-{i}" for i in range(3)]
    ring = ConsistentHashRing(nodes)
    keys = [f"doc-{i}" for i in range(200)]
    before = {k: ring.owner(k) for k in keys}
    ring.remove("replica-1")
    ring.add("replica-1")
    assert {k: ring.owner(k) for k in keys} == before


def test_hashring_preference_order_predicts_failover():
    ring = ConsistentHashRing([f"replica-{i}" for i in range(3)])
    for key in ("doc-a", "doc-b", "doc-c"):
        order = ring.preference(key)
        assert order[0] == ring.owner(key)
        assert sorted(order) == sorted(ring.nodes)
        # Removing the owner promotes exactly the next preference.
        ring.remove(order[0])
        assert ring.owner(key) == order[1]
        ring.add(order[0])


def test_hashring_empty_ring_raises():
    ring = ConsistentHashRing()
    with pytest.raises(KeyError):
        ring.owner("anything")
    assert ring.preference("anything") == []


def test_hashring_spreads_keys_reasonably():
    ring = ConsistentHashRing([f"replica-{i}" for i in range(4)])
    counts: dict[str, int] = {}
    for i in range(1000):
        counts[ring.owner(f"doc-{i}")] = counts.get(ring.owner(f"doc-{i}"), 0) + 1
    assert len(counts) == 4
    assert min(counts.values()) > 1000 / 4 / 4  # no starving node


# --------------------------------------------------------------------- #
# Export / install snapshot round-trip
# --------------------------------------------------------------------- #


def _build_pair(tmp_path):
    """A primary base with one committed update, and an empty replica dir."""
    primary = str(tmp_path / "primary" / "db")
    (tmp_path / "primary").mkdir()
    build_database(DOCUMENT, primary)
    replica_dir = tmp_path / "replica"
    replica_dir.mkdir()
    return primary, str(replica_dir / "db")


def test_export_install_round_trip(tmp_path):
    primary, replica = _build_pair(tmp_path)
    snapshot = export_generation(primary)
    assert set(snapshot["files"]) >= {".arb", ".lab", ".meta"}
    report = install_generation(replica, snapshot)
    assert report["installed"]
    pointer = read_pointer(replica)
    assert (pointer.generation, pointer.counter) == (
        snapshot["generation"],
        snapshot["counter"],
    )
    # The replica must answer queries identically to the primary.
    with Database.open(replica) as mirror, Database.open(primary) as original:
        assert (
            mirror.query("//book", language="xpath").selected_nodes()
            == original.query("//book", language="xpath").selected_nodes()
        )


def test_install_is_idempotent_and_refuses_stale(tmp_path):
    primary, replica = _build_pair(tmp_path)
    snapshot = export_generation(primary)
    assert install_generation(replica, snapshot)["installed"]
    # Same counter again: skipped, not rewritten.
    assert not install_generation(replica, snapshot)["installed"]
    # Move the primary forward; the replica must accept the newer snapshot
    # and then refuse the stale one.
    with Database.open(primary) as database:
        database.apply(Relabel(2, "tome"))
    newer = export_generation(primary)
    assert newer["counter"] > snapshot["counter"]
    assert install_generation(replica, newer)["installed"]
    assert not install_generation(replica, snapshot)["installed"]
    pointer = read_pointer(replica)
    assert pointer.counter == newer["counter"]


def test_install_rejects_torn_frames_before_touching_disk(tmp_path):
    primary, replica = _build_pair(tmp_path)
    snapshot = export_generation(primary)
    torn = dict(snapshot, files=dict(snapshot["files"]))
    frame = bytearray(base64.b64decode(torn["files"][".arb"]))
    frame[len(frame) // 2] ^= 0xFF  # flip one payload bit
    torn["files"][".arb"] = base64.b64encode(bytes(frame)).decode("ascii")
    with pytest.raises(StorageError):
        install_generation(replica, torn)
    # No generation data may have been written: the torn frame was detected
    # up front (only the writer-exclusion lock file is allowed to exist).
    leftovers = [p for p in glob.glob(replica + "*") if not p.endswith(".lock")]
    assert not leftovers


def test_install_rejects_malformed_snapshots(tmp_path):
    primary, replica = _build_pair(tmp_path)
    snapshot = export_generation(primary)
    for broken in (
        {},
        dict(snapshot, files={}),
        dict(snapshot, files={".arb": snapshot["files"][".arb"]}),
        dict(snapshot, counter="not-a-number"),
        dict(snapshot, files=dict(snapshot["files"], **{".evil": "AAAA"})),
    ):
        with pytest.raises(StorageError):
            install_generation(replica, broken)


# --------------------------------------------------------------------- #
# Primary-side wire ops
# --------------------------------------------------------------------- #


def _open_served(base):
    database = Database.open(base)
    database.plan_cache = PlanCache()
    return database


def _clone_base(primary, directory):
    directory.mkdir()
    for path in glob.glob(primary + "*"):
        shutil.copy(path, directory)
    return str(directory / "db")


def test_register_replica_ships_catch_up_and_reports(tmp_path):
    primary_base, _ = _build_pair(tmp_path)
    replica_base = _clone_base(primary_base, tmp_path / "r0")

    async def scenario():
        async with (
            ArbServer(_open_served(primary_base), replication_mode="sync") as primary,
            ArbServer(_open_served(replica_base)) as replica,
        ):
            register, stats = await request_many(primary.host, primary.port, [
                {"op": "register_replica", "host": replica.host,
                 "port": replica.port},
                {"op": "replica_stats"},
            ])
            update = (await request_many(primary.host, primary.port, [
                {"op": "update",
                 "ops": [{"kind": "relabel", "node": 2, "label": "tome"}]},
            ]))[0]
            replica_reads = await request_many(replica.host, replica.port, [
                {"query": "//tome", "language": "xpath"},
            ])
            return register, stats, update, replica_reads[0]

    register, stats, update, replica_read = asyncio.run(scenario())
    assert register["ok"] and register["registered"] == 1
    # Registration shipped the current generation as an idempotent catch-up
    # (the clone was already current, so the install was a no-op skip).
    assert register["ship"]["failed"] == 0
    assert stats["ok"] and stats["replication_mode"] == "sync"
    # Sync mode: the update ack carries the fan-out report...
    assert update["ok"] and update["replication"]["shipped"] == 1
    # ...and by ack time the replica serves the new generation.
    assert replica_read["ok"] and replica_read["count"] == 1
    assert replica_read["counter"] == update["counter"]


def test_install_generation_wire_op_refreshes_served_snapshot(tmp_path):
    primary_base, _ = _build_pair(tmp_path)
    replica_base = _clone_base(primary_base, tmp_path / "r0")
    with Database.open(primary_base) as database:
        database.apply(Relabel(2, "tome"))
    snapshot = export_generation(primary_base)

    async def scenario():
        async with ArbServer(_open_served(replica_base)) as replica:
            before = (await request_many(replica.host, replica.port, [
                {"query": "//tome", "language": "xpath"},
            ]))[0]
            ack = (await request_many(replica.host, replica.port, [
                {"op": "install_generation", "snapshot": snapshot},
            ]))[0]
            after = (await request_many(replica.host, replica.port, [
                {"query": "//tome", "language": "xpath"},
            ]))[0]
            return before, ack, after

    before, ack, after = asyncio.run(scenario())
    assert before["ok"] and before["count"] == 0
    assert ack["ok"] and ack["installed"]
    assert ack["counter"] == snapshot["counter"]
    # The served snapshot refreshed: queries see the installed generation.
    assert after["ok"] and after["count"] == 1
    assert after["counter"] == snapshot["counter"]


def test_replica_set_records_unreachable_replicas(tmp_path):
    primary_base, _ = _build_pair(tmp_path)

    async def scenario():
        replicas = ReplicaSet(timeout=2.0)
        replicas.register("127.0.0.1", 1)  # nothing listens there
        return await replicas.ship_current(primary_base)

    report = asyncio.run(scenario())
    assert report["shipped"] == 0 and report["failed"] == 1
    (row,) = report["replicas"]
    assert row["failures"] == 1 and "unreachable" in row["last_error"]


# --------------------------------------------------------------------- #
# Router routing and failover
# --------------------------------------------------------------------- #


def _replica_fleet(tmp_path, primary_base, count):
    return [
        _clone_base(primary_base, tmp_path / f"r{i}") for i in range(count)
    ]


def test_router_fans_reads_and_forwards_updates(tmp_path):
    primary_base, _ = _build_pair(tmp_path)
    replica_bases = _replica_fleet(tmp_path, primary_base, 2)

    async def scenario():
        async with (
            ArbServer(_open_served(primary_base), replication_mode="sync") as primary,
            ArbServer(_open_served(replica_bases[0])) as r0,
            ArbServer(_open_served(replica_bases[1])) as r1,
            ArbRouter(
                (primary.host, primary.port),
                [(r0.host, r0.port), (r1.host, r1.port)],
                ping_interval=0.1,
            ) as router,
        ):
            reads = await request_many(router.host, router.port, [
                {"query": "//book", "language": "xpath", "ids": True}
                for _ in range(4)
            ])
            update = (await request_many(router.host, router.port, [
                {"op": "update",
                 "ops": [{"kind": "relabel", "node": 2, "label": "tome"}]},
            ]))[0]
            after = await request_many(router.host, router.port, [
                {"query": "//tome", "language": "xpath"} for _ in range(4)
            ])
            stats = (await request_many(router.host, router.port, [
                {"op": "router_stats"},
            ]))[0]
            return reads, update, after, stats

    reads, update, after, stats = asyncio.run(scenario())
    assert all(r["ok"] and r["count"] == 2 for r in reads)
    # A single-connection burst is pinned: exactly one backend saw it, so
    # it coalesced there into one scan pair.
    assert reads[0]["coalesced"] and reads[0]["batch_size"] == 4
    assert update["ok"] and update["replication"]["shipped"] == 2
    assert all(r["ok"] and r["count"] == 1 for r in after)
    assert all(r["counter"] == update["counter"] for r in after)
    assert stats["ok"] and stats["router"]
    assert len(stats["replicas"]) == 2


def test_router_doc_id_routing_is_sticky(tmp_path):
    """Reads carrying a doc_id ride the hash ring, not the round robin."""
    primary_base, _ = _build_pair(tmp_path)
    replica_bases = _replica_fleet(tmp_path, primary_base, 2)

    async def scenario():
        async with (
            ArbServer(_open_served(primary_base)) as primary,
            ArbServer(_open_served(replica_bases[0])) as r0,
            ArbServer(_open_served(replica_bases[1])) as r1,
            ArbRouter(
                (primary.host, primary.port),
                [(r0.host, r0.port), (r1.host, r1.port)],
                ping_interval=5.0,  # keep health pings out of the counts
            ) as router,
        ):
            for _ in range(6):
                (reply,) = await request_many(router.host, router.port, [
                    {"query": "//book", "language": "xpath",
                     "doc_id": "always-the-same"},
                ])
                assert reply["ok"]
            stats = (await request_many(router.host, router.port, [
                {"op": "router_stats"},
            ]))[0]
            return stats

    stats = asyncio.run(scenario())
    requests = sorted(row["requests"] for row in stats["replicas"])
    # All six hashed reads landed on the one owning replica.
    assert requests[-1] >= 6 and requests[0] <= 1


def test_router_read_failover_is_invisible_to_clients(tmp_path):
    primary_base, _ = _build_pair(tmp_path)
    replica_bases = _replica_fleet(tmp_path, primary_base, 2)

    async def scenario():
        primary = ArbServer(_open_served(primary_base))
        r0 = ArbServer(_open_served(replica_bases[0]))
        r1 = ArbServer(_open_served(replica_bases[1]))
        await primary.start()
        await r0.start()
        await r1.start()
        router = ArbRouter(
            (primary.host, primary.port),
            [(r0.host, r0.port), (r1.host, r1.port)],
            ping_interval=0.1,
        )
        await router.start()
        try:
            warm = await request_many(router.host, router.port, [
                {"query": "//book", "language": "xpath"} for _ in range(2)
            ])
            assert all(r["ok"] for r in warm)
            # Kill one replica outright; in-flight and future reads must
            # transparently retry on the survivor (or the primary).
            await r0.stop()
            replies = await request_many(router.host, router.port, [
                {"query": "//book", "language": "xpath"} for _ in range(6)
            ])
            # The health loop (or a failed-over read) marks the dead
            # replica down within a tick or two.
            import time
            deadline = time.monotonic() + 10
            while True:
                stats = (await request_many(router.host, router.port, [
                    {"op": "router_stats"},
                ]))[0]
                if any(not row["healthy"] for row in stats["replicas"]):
                    break
                assert time.monotonic() < deadline, stats
                await asyncio.sleep(0.05)
            return replies, stats
        finally:
            await router.stop()
            await r1.stop()
            await primary.stop()

    replies, stats = asyncio.run(scenario())
    assert all(r["ok"] and r["count"] == 2 for r in replies)
    rows = {row["name"]: row for row in stats["replicas"]}
    assert any(not row["healthy"] for row in rows.values())


def test_router_serves_reads_from_primary_when_all_replicas_die(tmp_path):
    primary_base, _ = _build_pair(tmp_path)
    replica_bases = _replica_fleet(tmp_path, primary_base, 1)

    async def scenario():
        primary = ArbServer(_open_served(primary_base))
        r0 = ArbServer(_open_served(replica_bases[0]))
        await primary.start()
        await r0.start()
        router = ArbRouter(
            (primary.host, primary.port),
            [(r0.host, r0.port)],
            ping_interval=0.1,
        )
        await router.start()
        try:
            await r0.stop()
            return await request_many(router.host, router.port, [
                {"query": "//book", "language": "xpath"} for _ in range(3)
            ])
        finally:
            await router.stop()
            await primary.stop()

    replies = asyncio.run(scenario())
    assert all(r["ok"] and r["count"] == 2 for r in replies)


# --------------------------------------------------------------------- #
# Service-layer bugfix regressions (satellites)
# --------------------------------------------------------------------- #


def test_request_many_surfaces_idless_replies_as_service_error(tmp_path):
    """A reply without a usable id must raise, not hang under a None key.

    Regression: the read loop stored replies under ``payload.get("id")``;
    an id-less error reply (e.g. the server answering a malformed line)
    landed under ``None`` and either KeyError'd the reorder or hung the
    loop waiting for an answer that already arrived.
    """

    async def scenario():
        async def fake_server(reader, writer):
            await reader.readline()
            # An id-less error reply, as sent for an unparseable line.
            writer.write(
                json.dumps({"ok": False, "error": "bad line"}).encode() + b"\n"
            )
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            with pytest.raises(ServiceError, match="id-less"):
                await request_many(host, port, [{"query": "//book"}])
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_request_many_rejects_unsolicited_ids(tmp_path):
    async def scenario():
        async def fake_server(reader, writer):
            await reader.readline()
            writer.write(json.dumps({"id": 999, "ok": True}).encode() + b"\n")
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            with pytest.raises(ServiceError, match="unsolicited"):
                await request_many(host, port, [{"query": "//book"}])
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_open_target_directory_without_manifest_is_diagnosed(tmp_path):
    """Regression: a bare directory fell through to ``Database.open`` and
    died with a confusing generation-pointer error."""
    bare = tmp_path / "not-a-collection"
    bare.mkdir()
    with pytest.raises(ServiceError, match="without a collection manifest"):
        open_target(str(bare))
