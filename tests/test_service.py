"""Core behavior of the coalescing query service.

The contract under test: concurrent requests that land in one window share
**one** scan pair of the target's `.arb` file (total ``pages_read`` equal to
a single client's, however many riders), every caller gets exactly its own
answer back, and admission control rejects -- never queues unboundedly --
once the depth limit is hit.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import Collection, Database, PlanCache
from repro.errors import ServiceClosedError, ServiceError, ServiceOverloadedError
from repro.service import QueryService

DOCUMENT = "<lib>" + "<book><t>x</t></book>" * 7 + "<dvd/>" * 3 + "</lib>"

BOOKS = "QUERY :- V.Label[book];"
DVDS = "QUERY :- V.Label[dvd];"
TITLES = "QUERY :- V.Label[t];"


@pytest.fixture
def disk_database(tmp_path) -> Database:
    database = Database.build(DOCUMENT, str(tmp_path / "doc"))
    database.plan_cache = PlanCache()
    return database


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------- #
# Answers and coalescing
# --------------------------------------------------------------------------- #


def test_single_request_matches_direct_query(disk_database):
    async def main():
        async with QueryService(disk_database, window=0.01) as service:
            return await service.submit(BOOKS)

    response = run(main())
    direct = disk_database.query(BOOKS, engine="disk")
    assert response.count() == direct.count() == 7
    assert response.selected_nodes() == direct.selected_nodes()
    assert response.batch_size == 1
    assert not response.coalesced


def test_concurrent_requests_share_one_scan_pair(disk_database):
    queries = [BOOKS, DVDS, TITLES, BOOKS, DVDS, TITLES]

    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            single = await service.submit(BOOKS)
            burst = await asyncio.gather(*[service.submit(q) for q in queries])
            return single, burst

    single, burst = run(main())
    # Every rider reports the same shared batch and the same scan pair.
    assert {response.batch_id for response in burst} == {burst[0].batch_id}
    assert all(response.batch_size == len(queries) for response in burst)
    assert all(response.coalesced for response in burst)
    # The batch's .arb I/O equals the single-client figure: one backward +
    # one forward scan, independent of the number of coalesced clients.
    assert burst[0].batch_arb_io.pages_read == single.batch_arb_io.pages_read
    assert burst[0].batch_arb_io.seeks == 2
    # Demux: each caller got its own answer, none of a batch-mate's.
    expected = {BOOKS: 7, DVDS: 3, TITLES: 7}
    for query, response in zip(queries, burst):
        assert response.count() == expected[query]


def test_batch_full_dispatches_without_waiting(disk_database):
    async def main():
        async with QueryService(disk_database, window=30.0, max_batch=4) as service:
            return await asyncio.gather(*[service.submit(BOOKS) for _ in range(4)])

    responses = run(main())  # would time out if the 30s window were awaited
    assert all(response.batch_size == 4 for response in responses)


def test_memory_database_target():
    database = Database.from_xml(DOCUMENT)
    database.plan_cache = PlanCache()

    async def main():
        async with QueryService(database, window=0.02) as service:
            return await asyncio.gather(service.submit(BOOKS), service.submit(DVDS))

    books, dvds = run(main())
    assert books.count() == 7
    assert dvds.count() == 3


def test_collection_target(tmp_path):
    collection = Collection.create(str(tmp_path / "corpus"), plan_cache=PlanCache())
    for index in range(3):
        collection.add_document(DOCUMENT, doc_id=f"doc-{index}")

    async def main():
        async with QueryService(collection, window=0.05) as service:
            single = await service.submit(BOOKS)
            burst = await asyncio.gather(
                service.submit(BOOKS), service.submit(DVDS), service.submit(TITLES)
            )
            return single, burst

    single, burst = run(main())
    assert all(response.batch_size == 3 for response in burst)
    # One scan pair per document for the whole batch: total pages equal the
    # single-client figure although three clients rode the window.
    assert burst[0].batch_arb_io.pages_read == single.batch_arb_io.pages_read
    assert burst[0].count() == 3 * 7  # books over the whole corpus
    assert burst[1].count() == 3 * 3
    # The per-request result is a single-query collection view.
    assert len(burst[0].result.programs) == 1
    assert [doc.doc_id for doc in burst[0].result.documents] == [
        "doc-0", "doc-1", "doc-2",
    ]


def test_duplicate_queries_share_one_plan(disk_database):
    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            return await asyncio.gather(*[service.submit(BOOKS) for _ in range(3)])

    responses = run(main())
    assert [response.count() for response in responses] == [7, 7, 7]
    assert sum(response.plan_cache_hit for response in responses) == 2
    cache_stats = disk_database.plan_cache.stats()
    assert cache_stats["plans"] == 1


# --------------------------------------------------------------------------- #
# Admission control and lifecycle
# --------------------------------------------------------------------------- #


def test_admission_control_rejects_above_queue_limit(disk_database):
    async def main():
        async with QueryService(
            disk_database, window=0.2, max_pending=2, max_batch=64
        ) as service:
            results = await asyncio.gather(
                *[service.submit(BOOKS) for _ in range(6)], return_exceptions=True
            )
            return results, service.stats().rejected

    results, rejected = run(main())
    overloaded = [r for r in results if isinstance(r, ServiceOverloadedError)]
    answered = [r for r in results if not isinstance(r, BaseException)]
    assert len(overloaded) == 4
    assert rejected == 4
    assert all(error.pending >= 2 for error in overloaded)
    assert [response.count() for response in answered] == [7, 7]


def test_stop_drains_queued_requests(disk_database):
    async def main():
        service = await QueryService(disk_database, window=5.0).start()
        tasks = [asyncio.ensure_future(service.submit(BOOKS)) for _ in range(3)]
        await asyncio.sleep(0)  # let the submits enqueue
        await service.stop()  # must not wait out the 5s window
        return await asyncio.gather(*tasks)

    responses = run(main())
    assert [response.count() for response in responses] == [7, 7, 7]


def test_submit_after_stop_raises(disk_database):
    async def main():
        service = await QueryService(disk_database).start()
        await service.stop()
        with pytest.raises(ServiceClosedError):
            await service.submit(BOOKS)

    run(main())


def test_double_start_raises(disk_database):
    async def main():
        async with QueryService(disk_database) as service:
            with pytest.raises(ServiceError):
                await service.start()

    run(main())


def test_constructor_validation(disk_database):
    with pytest.raises(ServiceError):
        QueryService("not a database")
    with pytest.raises(ServiceError):
        QueryService(disk_database, window=-1)
    with pytest.raises(ServiceError):
        QueryService(disk_database, max_batch=0)
    with pytest.raises(ServiceError):
        QueryService(disk_database, max_pending=0)


# --------------------------------------------------------------------------- #
# Cross-thread submission
# --------------------------------------------------------------------------- #


def test_submit_threadsafe_from_other_threads(disk_database):
    counts = []

    async def main():
        async with QueryService(disk_database, window=0.05) as service:
            def client(query):
                counts.append(service.submit_threadsafe(query).result(timeout=30))

            threads = [
                threading.Thread(target=client, args=(query,))
                for query in (BOOKS, DVDS, TITLES)
            ]
            for thread in threads:
                thread.start()
            # Wait for the thread clients without blocking the service loop.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: [thread.join() for thread in threads]
            )

    run(main())
    assert sorted(response.count() for response in counts) == [3, 7, 7]


def test_submit_threadsafe_requires_running_service(disk_database):
    service = QueryService(disk_database)
    with pytest.raises(ServiceClosedError):
        service.submit_threadsafe(BOOKS)
