"""Tests for XML parsing, SAX event streams and serialisation."""

from __future__ import annotations

import io

import pytest

from repro.errors import XMLParseError
from repro.tree import (
    BinaryTree,
    parse_xml,
    parse_xml_file,
    serialize_with_selection,
    serialize_xml,
    tree_to_sax_events,
)
from repro.tree.xml_io import END, START, iter_sax_events


class TestParsing:
    def test_element_structure(self):
        tree = parse_xml("<a><b/><c><d/></c></a>", text_mode="ignore")
        assert tree.to_nested() == ("a", ["b", ("c", ["d"])])

    def test_text_as_character_nodes(self):
        tree = parse_xml("<a>xy</a>")
        assert [n.label for n in tree.iter_nodes()] == ["a", "x", "y"]

    def test_text_as_single_node(self):
        tree = parse_xml("<a>hello</a>", text_mode="node")
        assert tree.to_nested() == ("a", ["hello"])

    def test_text_ignored(self):
        tree = parse_xml("<a>hello<b/>world</a>", text_mode="ignore")
        assert tree.to_nested() == ("a", ["b"])

    def test_mixed_content_order_preserved(self):
        tree = parse_xml("<a>x<b/>y</a>")
        assert [n.label for n in tree.iter_nodes()] == ["a", "x", "b", "y"]

    def test_attributes_are_ignored(self):
        tree = parse_xml('<a id="1"><b key="v"/></a>', text_mode="ignore")
        assert tree.to_nested() == ("a", ["b"])

    def test_malformed_xml_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b></a>")

    def test_invalid_text_mode(self):
        with pytest.raises(ValueError):
            parse_xml("<a/>", text_mode="weird")

    def test_parse_file_object(self):
        handle = io.BytesIO(b"<a><b/></a>")
        tree = parse_xml_file(handle, text_mode="ignore")
        assert tree.to_nested() == ("a", ["b"])

    def test_parse_file_path(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a>hi</a>")
        tree = parse_xml_file(path, text_mode="node")
        assert tree.to_nested() == ("a", ["hi"])

    def test_entities_are_decoded(self):
        tree = parse_xml("<a>&amp;</a>")
        assert [n.label for n in tree.iter_nodes()] == ["a", "&"]


class TestSaxEvents:
    def test_events_are_balanced(self):
        events = list(iter_sax_events("<a><b>x</b></a>"))
        starts = [label for kind, label in events if kind == START]
        ends = [label for kind, label in events if kind == END]
        assert sorted(starts) == sorted(ends)
        assert starts[0] == "a" and ends[-1] == "a"

    def test_event_count_is_twice_node_count(self):
        document = "<a><b>xy</b><c/></a>"
        tree = parse_xml(document)
        events = list(iter_sax_events(document))
        assert len(events) == 2 * tree.node_count()

    def test_tree_to_sax_events_nesting(self):
        tree = parse_xml("<a><b/><c/></a>", text_mode="ignore")
        events = list(tree_to_sax_events(tree))
        assert events == [
            (START, "a"),
            (START, "b"),
            (END, "b"),
            (START, "c"),
            (END, "c"),
            (END, "a"),
        ]


class TestSerialisation:
    def test_round_trip_elements(self):
        document = "<a><b/><c><d/></c></a>"
        tree = parse_xml(document, text_mode="ignore")
        assert serialize_xml(tree, char_nodes_as_text=False) == document

    def test_round_trip_with_text(self):
        document = "<a>hi<b/>yo</a>"
        tree = parse_xml(document)
        assert serialize_xml(tree) == document

    def test_reparse_of_serialisation_is_identity(self):
        document = "<doc><p>some text</p><p>more</p></doc>"
        tree = parse_xml(document)
        again = parse_xml(serialize_xml(tree))
        assert tree.equals(again)

    def test_selected_element_is_marked(self):
        tree = parse_xml("<a><b/><c/></a>", text_mode="ignore")
        # Node ids in document order: a=0, b=1, c=2.
        output = serialize_with_selection(tree, selected={2}, char_nodes_as_text=False)
        assert '<c arb:selected="true"/>' in output
        assert "<b/>" in output and "b arb" not in output

    def test_selected_character_node_is_wrapped(self):
        tree = parse_xml("<a>xy</a>")
        output = serialize_with_selection(tree, selected={1})
        assert output == "<a><arb:selected>x</arb:selected>y</a>"

    def test_escaping(self):
        tree = parse_xml("<a>&lt;&amp;</a>", text_mode="node")
        assert serialize_xml(tree) == "<a>&lt;&amp;</a>"

    def test_selection_ids_match_binary_tree_ids(self):
        document = "<r><a>x</a><b/></r>"
        tree = parse_xml(document)
        binary = BinaryTree.from_unranked(tree)
        b_id = binary.labels.index("b")
        output = serialize_with_selection(tree, selected={b_id})
        assert '<b arb:selected="true"/>' in output
