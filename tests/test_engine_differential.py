"""Differential testing: all four backends agree on every seed document.

``test_property_equivalence`` checks the core evaluators against each other
on random trees; this suite extends the idea systematically to the four
*execution backends* of the plan layer.  For a corpus of generated XPath
queries (drawn from the predicate-free downward fragment, the intersection
every backend supports) and for random TMNF programs, the ``streaming``,
``disk``, ``memory`` and ``fixpoint`` engines must return identical selected
node ids on every seed document -- same queries, same trees, four completely
different access patterns (one scan / two scans / in-memory automata /
naive fixpoint).
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings

from repro import Database
from repro.plan import PlanCache
from tests.strategies import tmnf_programs, unranked_trees, xpath_queries

#: Small, structurally diverse documents every example runs against.
SEED_DOCUMENTS = (
    "<a/>",
    "<a><b/></a>",
    "<a><a><a/></a></a>",
    "<a><b/><b/><b/></a>",
    "<a><b><a/></b><a><b/><a/></a></a>",
    "<b><a><b><b/></b></a><b/><a/></b>",
    "<a><b><b><a/><b/></b></b><a><a/></a></a>",
)

ALL_ENGINES = ("streaming", "disk", "memory", "fixpoint")

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _selected(database, query, language, engine):
    return database.query(query, language=language, engine=engine).selected_nodes()


def _assert_engines_agree(query, language, engines, document, base_path):
    """All ``engines`` agree on ``document``, on disk and in memory."""
    on_disk = Database.build(document, base_path)
    on_disk.plan_cache = PlanCache()
    answers = {
        engine: _selected(on_disk, query, language, engine) for engine in engines
    }
    reference = answers[engines[0]]
    assert all(nodes == reference for nodes in answers.values()), answers
    # The memory-resident paths must agree with the disk-resident ones.
    in_memory = Database.from_xml(document)
    in_memory.plan_cache = PlanCache()
    for engine in engines:
        if engine == "disk":
            continue  # the only backend that requires secondary storage
        assert _selected(in_memory, query, language, engine) == reference
    return reference


@given(query=xpath_queries())
@settings(max_examples=50, **COMMON_SETTINGS)
def test_all_four_backends_agree_on_generated_xpath(query):
    with tempfile.TemporaryDirectory() as directory:
        for index, document in enumerate(SEED_DOCUMENTS):
            _assert_engines_agree(
                query, "xpath", ALL_ENGINES, document, f"{directory}/doc{index}"
            )


@given(program=tmnf_programs())
@settings(max_examples=40, **COMMON_SETTINGS)
def test_tmnf_backends_agree_on_generated_programs(program):
    """TMNF programs exceed the streaming fragment; the other three agree."""
    with tempfile.TemporaryDirectory() as directory:
        for index, document in enumerate(SEED_DOCUMENTS):
            _assert_engines_agree(
                program, "tmnf", ("disk", "memory", "fixpoint"),
                document, f"{directory}/doc{index}",
            )


@given(query=xpath_queries(), tree=unranked_trees(max_leaves=8))
@settings(max_examples=40, **COMMON_SETTINGS)
def test_all_four_backends_agree_on_random_trees(query, tree):
    """The same differential, with hypothesis shrinking over the tree too."""
    with tempfile.TemporaryDirectory() as directory:
        database = Database.build(tree, f"{directory}/doc")
        database.plan_cache = PlanCache()
        answers = {
            engine: _selected(database, query, "xpath", engine)
            for engine in ALL_ENGINES
        }
        reference = answers["fixpoint"]
        assert all(nodes == reference for nodes in answers.values()), answers


def test_planner_auto_choice_matches_forced_backends():
    """engine=None/auto answers must equal every forced backend's answer."""
    with tempfile.TemporaryDirectory() as directory:
        for index, document in enumerate(SEED_DOCUMENTS):
            database = Database.build(document, f"{directory}/{index}")
            database.plan_cache = PlanCache()
            for query, language in (("//a/b", "xpath"), ("QUERY :- V.Label[b];", "tmnf")):
                auto = _selected(database, query, language, None)
                engines = ALL_ENGINES if language == "xpath" else ALL_ENGINES[1:]
                for engine in engines:
                    assert _selected(database, query, language, engine) == auto
