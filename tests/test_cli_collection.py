"""The ``arb collection`` command-line subcommands, end to end."""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main

DOCUMENT = "<library><book><title>ab</title></book><dvd/><book/></library>"
BOOK_QUERY = "QUERY :- V.Label[book];"
DVD_QUERY = "QUERY :- V.Label[dvd];"


@pytest.fixture()
def corpus_root(tmp_path):
    """A collection with three XML documents built through the CLI."""
    xml_paths = []
    for index in range(3):
        path = tmp_path / f"doc{index}.xml"
        path.write_text(DOCUMENT)
        xml_paths.append(str(path))
    root = str(tmp_path / "corpus")
    assert cli_main(["collection", "build", root, *xml_paths]) == 0
    return root


def test_collection_build_reports_documents(tmp_path, capsys):
    xml_path = tmp_path / "one.xml"
    xml_path.write_text(DOCUMENT)
    root = str(tmp_path / "corpus")
    assert cli_main(["collection", "build", root, str(xml_path)]) == 0
    out = capsys.readouterr().out
    assert "added one:" in out
    assert "1 documents" in out
    # Building again extends the same collection, refusing duplicate ids.
    assert cli_main(["collection", "build", root, str(xml_path)]) == 1
    assert "duplicate document id" in capsys.readouterr().err


def test_collection_query_single(corpus_root, capsys):
    capsys.readouterr()
    assert cli_main([
        "collection", "query", corpus_root, "-q", BOOK_QUERY,
        "--workers", "2", "--ids",
    ]) == 0
    out = capsys.readouterr().out
    assert "collection      : 3 documents" in out
    assert "workers         : 2 (thread, 2 shards)" in out
    assert "[0] QUERY: 6 selected across the corpus" in out
    assert "doc0[0]:" in out
    assert "linear scans" in out


def test_collection_query_batch(corpus_root, capsys):
    capsys.readouterr()
    assert cli_main([
        "collection", "query", corpus_root, "--batch",
        "-q", BOOK_QUERY, "-q", DVD_QUERY,
        "--workers", "3", "--executor", "serial",
    ]) == 0
    out = capsys.readouterr().out
    assert "[0] QUERY: 6 selected" in out
    assert "[1] QUERY: 3 selected" in out
    assert "plan cache      :" in out


def test_collection_query_xpath_streaming(corpus_root, capsys):
    capsys.readouterr()
    assert cli_main([
        "collection", "query", corpus_root, "-x", "//book",
        "--engine", "streaming",
    ]) == 0
    out = capsys.readouterr().out
    assert "6 selected across the corpus" in out


def test_collection_query_multiple_without_batch_fails(corpus_root, capsys):
    capsys.readouterr()
    assert cli_main([
        "collection", "query", corpus_root, "-q", BOOK_QUERY, "-q", DVD_QUERY,
    ]) == 1
    assert "use --batch" in capsys.readouterr().err


def test_collection_stats(corpus_root, capsys):
    capsys.readouterr()
    assert cli_main(["collection", "stats", corpus_root]) == 0
    out = capsys.readouterr().out
    assert "documents    : 3" in out
    assert "doc1" in out


def test_collection_query_missing_collection(tmp_path, capsys):
    assert cli_main([
        "collection", "query", str(tmp_path / "nope"), "-q", BOOK_QUERY,
    ]) == 1
    assert "not a collection" in capsys.readouterr().err
