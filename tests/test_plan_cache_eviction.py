"""LRU eviction order and cache-key stability of the keyed PlanCache.

The cache's two key levels (source text, structural form) must behave as an
LRU over the *structural* entries: touching a plan through any spelling or
through a program object refreshes it, and eviction drops the least recently
used plan together with every source alias that points at it.  Structural
keys must be stable under structurally-equal-but-distinct query ASTs --
respellings, rule reordering and rule duplication all map to one plan.
"""

from __future__ import annotations

import threading

from repro.plan.cache import PlanCache
from repro.plan.plan import structural_key_of
from repro.tmnf.ast import LocalRule
from repro.tmnf.program import TMNFProgram

QUERY_A = "QUERY :- V.Label[a];"
QUERY_B = "QUERY :- V.Label[b];"
QUERY_C = "QUERY :- V.Label[c];"


# --------------------------------------------------------------------------- #
# Cache-key stability under structurally equal but distinct ASTs
# --------------------------------------------------------------------------- #


def test_respelled_query_shares_one_plan():
    cache = PlanCache()
    plan, hit = cache.lookup(QUERY_A)
    respelled, hit2 = cache.lookup("QUERY  :-  V.Label[a] ;")
    assert not hit and hit2
    assert respelled is plan
    assert len(cache) == 1


def test_rule_order_does_not_change_the_key():
    first = LocalRule(head="X0", body=("Label[a]",))
    second = LocalRule(head="X1", body=("Root",))
    ordered = TMNFProgram.from_rules([first, second], query_predicates="X0")
    reordered = TMNFProgram.from_rules([second, first], query_predicates="X0")
    assert structural_key_of(ordered) == structural_key_of(reordered)
    cache = PlanCache()
    plan, _ = cache.lookup(ordered)
    shared, hit = cache.lookup(reordered)
    assert hit and shared is plan


def test_duplicated_rule_does_not_change_the_key():
    """Rule multiplicity is irrelevant to the least model, so also to the key."""
    rule = LocalRule(head="X0", body=("Label[a]",))
    once = TMNFProgram.from_rules([rule], query_predicates="X0")
    twice = TMNFProgram.from_rules([rule, rule], query_predicates="X0")
    assert structural_key_of(once) == structural_key_of(twice)
    cache = PlanCache()
    plan, _ = cache.lookup(once)
    shared, hit = cache.lookup(twice)
    assert hit and shared is plan
    assert len(cache) == 1


def test_different_query_predicates_get_different_plans():
    rule_a = LocalRule(head="X0", body=("Label[a]",))
    rule_b = LocalRule(head="X1", body=("Label[a]",))
    program_a = TMNFProgram.from_rules([rule_a, rule_b], query_predicates="X0")
    program_b = TMNFProgram.from_rules([rule_a, rule_b], query_predicates="X1")
    assert structural_key_of(program_a) != structural_key_of(program_b)


# --------------------------------------------------------------------------- #
# LRU eviction order
# --------------------------------------------------------------------------- #


def test_eviction_drops_the_least_recently_used_plan():
    cache = PlanCache(max_plans=2)
    plan_a, _ = cache.lookup(QUERY_A)
    plan_b, _ = cache.lookup(QUERY_B)
    cache.lookup(QUERY_A)  # touch A: B is now the LRU entry
    plan_c, _ = cache.lookup(QUERY_C)
    assert plan_a in cache and plan_c in cache
    assert plan_b not in cache
    assert len(cache) == 2


def test_insertion_order_evicts_without_touches():
    cache = PlanCache(max_plans=2)
    plan_a, _ = cache.lookup(QUERY_A)
    cache.lookup(QUERY_B)
    cache.lookup(QUERY_C)
    assert plan_a not in cache  # oldest, never touched again


def test_structural_hit_refreshes_lru_position():
    """A hit through a *new spelling* must also refresh the LRU position."""
    cache = PlanCache(max_plans=2)
    plan_a, _ = cache.lookup(QUERY_A)
    cache.lookup(QUERY_B)
    cache.lookup("QUERY :-  V.Label[a];")  # structural hit on A, new spelling
    cache.lookup(QUERY_C)
    assert plan_a in cache
    assert QUERY_B not in cache


def test_program_object_hit_refreshes_lru_position():
    cache = PlanCache(max_plans=2)
    plan_a, _ = cache.lookup(TMNFProgram.parse(QUERY_A))
    cache.lookup(QUERY_B)
    cache.lookup(TMNFProgram.parse(QUERY_A))  # object lookup, no source key
    cache.lookup(QUERY_C)
    assert plan_a in cache
    assert QUERY_B not in cache


def test_eviction_removes_stale_source_aliases():
    cache = PlanCache(max_plans=1)
    cache.lookup(QUERY_A)
    cache.lookup(QUERY_B)  # evicts A's plan and must drop A's alias
    assert QUERY_A not in cache
    assert cache.get_cached(QUERY_A) is None
    # Looking A up again recompiles: a miss, not a stale-alias hit.
    hits_before = cache.hits
    _, hit = cache.lookup(QUERY_A)
    assert not hit and cache.hits == hits_before


def test_evicted_plan_is_recompiled_as_a_distinct_object():
    cache = PlanCache(max_plans=1)
    plan_a, _ = cache.lookup(QUERY_A)
    cache.lookup(QUERY_B)
    plan_a2, hit = cache.lookup(QUERY_A)
    assert not hit and plan_a2 is not plan_a


def test_clear_resets_counters_and_entries():
    cache = PlanCache(max_plans=4)
    cache.lookup(QUERY_A)
    cache.lookup(QUERY_A)
    assert cache.stats() == {"plans": 1, "hits": 1, "misses": 1}
    cache.clear()
    assert cache.stats() == {"plans": 0, "hits": 0, "misses": 0}
    assert len(cache) == 0


# --------------------------------------------------------------------------- #
# Concurrency: lookups from many threads stay consistent
# --------------------------------------------------------------------------- #


def test_concurrent_lookups_compile_each_query_exactly_once():
    cache = PlanCache(max_plans=16)
    queries = [f"QUERY :- V.Label[l{i}];" for i in range(4)]
    plans: list[dict] = [dict() for _ in range(8)]

    def worker(slot: int) -> None:
        for _ in range(50):
            for query in queries:
                plan, _ = cache.lookup(query)
                plans[slot][query] = plan

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert cache.misses == len(queries)  # one compile per distinct query
    assert len(cache) == len(queries)
    for query in queries:
        distinct = {id(slot[query]) for slot in plans}
        assert len(distinct) == 1  # every thread saw the same plan object
