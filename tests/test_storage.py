"""Tests for the Arb storage model: formats, build, scans, paging."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError, StorageFormatError
from repro.storage import (
    ArbDatabase,
    DatabaseBuilder,
    LabelTable,
    PagedReader,
    PagedWriter,
    build_database,
    decode_node,
    encode_node,
    scan_bottom_up,
    scan_top_down,
)
from repro.storage.paging import BackwardPagedWriter, IOStatistics
from repro.storage.records import decode_event, encode_event
from repro.tree import BinaryTree, parse_xml
from tests.conftest import random_unranked_tree


class TestRecords:
    def test_node_record_round_trip(self):
        for label_index in (0, 1, 255, 256, 4000, (1 << 14) - 1):
            for first in (False, True):
                for second in (False, True):
                    data = encode_node(label_index, first, second)
                    assert len(data) == 2
                    record = decode_node(data)
                    assert record.label_index == label_index
                    assert record.has_first_child is first
                    assert record.has_second_child is second

    def test_node_record_larger_k(self):
        data = encode_node(100_000, True, False, record_size=3)
        record = decode_node(data, record_size=3)
        assert record.label_index == 100_000 and record.has_first_child

    def test_label_index_overflow_rejected(self):
        with pytest.raises(StorageFormatError):
            encode_node(1 << 14, False, False)

    def test_event_round_trip(self):
        for label_index in (0, 77, 300, (1 << 15) - 1):
            for is_end in (False, True):
                index, end = decode_event(encode_event(label_index, is_end))
                assert (index, end) == (label_index, is_end)

    def test_decode_wrong_length(self):
        with pytest.raises(StorageFormatError):
            decode_node(b"\x00")


class TestLabelTable:
    def test_characters_use_reserved_indexes(self):
        table = LabelTable()
        assert table.index_of("A", is_text=True) == ord("A")
        assert table.name_of(ord("A")) == "A"
        assert table.is_character_index(ord("A"))

    def test_tags_start_at_256(self):
        table = LabelTable()
        assert table.index_of("gene") == 256
        assert table.index_of("sequence") == 257
        assert table.index_of("gene") == 256  # stable
        assert table.name_of(257) == "sequence"
        assert table.n_tags == 2

    def test_save_and_load(self, tmp_path):
        table = LabelTable()
        for name in ("alpha", "beta", "gamma"):
            table.index_of(name)
        path = str(tmp_path / "x.lab")
        table.save(path)
        loaded = LabelTable.load(path)
        assert loaded.name_of(256) == "alpha"
        assert loaded.index_of("gamma") == 258
        assert loaded.n_tags == 3

    def test_overflow(self):
        table = LabelTable(max_index=257)
        table.index_of("a1")
        table.index_of("a2")
        with pytest.raises(StorageError):
            table.index_of("a3")

    def test_whitespace_in_tag_rejected(self):
        with pytest.raises(StorageError):
            LabelTable().index_of("bad tag")


class TestPaging:
    def test_forward_round_trip(self, tmp_path):
        path = str(tmp_path / "data.bin")
        records = [bytes([i % 256, (i * 7) % 256]) for i in range(5000)]
        with PagedWriter(path, page_size=128) as writer:
            for record in records:
                writer.write(record)
        reader = PagedReader(path, page_size=128)
        assert list(reader.records_forward(2)) == records

    def test_backward_round_trip(self, tmp_path):
        path = str(tmp_path / "data.bin")
        records = [bytes([i % 256, (i * 3) % 256]) for i in range(3333)]
        with PagedWriter(path, page_size=256) as writer:
            for record in records:
                writer.write(record)
        reader = PagedReader(path, page_size=256)
        assert list(reader.records_backward(2)) == list(reversed(records))

    def test_backward_writer_produces_forward_readable_file(self, tmp_path):
        path = str(tmp_path / "back.bin")
        records = [i.to_bytes(4, "big") for i in range(1000)]
        with BackwardPagedWriter(path, total_size=4000, page_size=64) as writer:
            for record in reversed(records):
                writer.write(record)
        reader = PagedReader(path)
        assert list(reader.records_forward(4)) == records

    def test_backward_writer_underflow_detected(self, tmp_path):
        path = str(tmp_path / "short.bin")
        writer = BackwardPagedWriter(path, total_size=8)
        writer.write(b"\x00" * 4)
        with pytest.raises(StorageError):
            writer.close()

    def test_io_statistics_are_counted(self, tmp_path):
        path = str(tmp_path / "data.bin")
        stats = IOStatistics()
        with PagedWriter(path, page_size=64, stats=stats) as writer:
            writer.write(b"\x01" * 1024)
        assert stats.bytes_written == 1024
        assert stats.pages_written == 1024 // 64
        reader = PagedReader(path, page_size=64, stats=stats)
        list(reader.records_forward(2))
        assert stats.bytes_read == 1024
        assert stats.seeks == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            PagedReader(str(tmp_path / "nope.bin"))


class TestBuildAndOpen:
    def test_build_from_xml_and_reload(self, tmp_path):
        document = "<gene><seq>ACG</seq><seq>T</seq></gene>"
        base = str(tmp_path / "genes")
        stats = build_database(document, base, name="genes")
        assert stats.element_nodes == 3  # gene + 2 seq
        assert stats.char_nodes == 4  # A C G T
        assert stats.n_tags == 2
        # Two bytes per node, two events of two bytes per node.
        assert stats.arb_file_size == 2 * stats.total_nodes
        assert stats.evt_file_size == 2 * stats.arb_file_size
        assert os.path.exists(base + ".arb") and os.path.exists(base + ".lab")
        # The temporary event file is removed by default.
        assert not os.path.exists(base + ".evt")

        database = ArbDatabase.open(base)
        assert database.n_nodes == stats.total_nodes
        tree = database.to_binary_tree()
        expected = BinaryTree.from_unranked(parse_xml(document))
        assert tree.labels == expected.labels
        assert tree.first_child == expected.first_child
        assert tree.second_child == expected.second_child

    def test_keep_event_file_option(self, tmp_path):
        base = str(tmp_path / "keep")
        DatabaseBuilder(keep_event_file=True).build_from_xml("<a><b/></a>", base)
        assert os.path.exists(base + ".evt")

    def test_empty_stream_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            DatabaseBuilder().build_from_events(iter(()), str(tmp_path / "empty"))

    def test_open_missing_database(self, tmp_path):
        with pytest.raises(StorageError):
            ArbDatabase.open(str(tmp_path / "missing"))

    def test_open_accepts_arb_suffix(self, tmp_path):
        base = str(tmp_path / "doc")
        build_database("<a><b/></a>", base)
        database = ArbDatabase.open(base + ".arb")
        assert database.n_nodes == 2

    def test_build_stack_depth_bounded_by_xml_depth(self, tmp_path):
        document = "<a><b><c><d><e/></d></c></b></a>"
        stats = build_database(document, str(tmp_path / "deep"))
        assert stats.max_stack_depth <= 5 + 1

    def test_random_round_trip(self, tmp_path):
        rng = random.Random(99)
        for index in range(10):
            tree = random_unranked_tree(rng, max_nodes=80, labels=("x", "y", "z"))
            base = str(tmp_path / f"rand{index}")
            build_database(tree, base)
            reloaded = ArbDatabase.open(base).to_binary_tree()
            expected = BinaryTree.from_unranked(tree)
            assert reloaded.labels == expected.labels
            assert reloaded.first_child == expected.first_child
            assert reloaded.second_child == expected.second_child

    @given(
        spec=st.recursive(
            st.sampled_from(["a", "b"]),
            lambda children: st.tuples(st.sampled_from(["a", "b"]), st.lists(children, max_size=3)),
            max_leaves=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, spec, tmp_path_factory):
        from repro.tree import UnrankedTree

        tree = UnrankedTree.from_nested(spec)
        base = str(tmp_path_factory.mktemp("arbdb") / "t")
        build_database(tree, base)
        reloaded = ArbDatabase.open(base).to_binary_tree()
        expected = BinaryTree.from_unranked(tree)
        assert reloaded.labels == expected.labels
        assert reloaded.first_child == expected.first_child
        assert reloaded.second_child == expected.second_child


class TestScans:
    def build(self, tmp_path, document: str) -> ArbDatabase:
        base = str(tmp_path / "db")
        build_database(document, base)
        return ArbDatabase.open(base)

    def test_top_down_scan_counts_nodes(self, tmp_path):
        database = self.build(tmp_path, "<a><b>xy</b><c/></a>")
        visits: list[int] = []
        result = scan_top_down(database, lambda node, record, parent, which: visits.append(node))
        assert result.nodes_visited == database.n_nodes
        assert visits == list(range(database.n_nodes))

    def test_top_down_parent_values_propagate(self, tmp_path):
        database = self.build(tmp_path, "<a><b><c/></b><d/></a>")
        depths: dict[int, int] = {}

        def visit(node, record, parent_depth, which):
            # Unranked depth: +1 when arriving as a first (binary) child.
            depth = 0 if parent_depth is None else parent_depth + (1 if which == 1 else 0)
            depths[node] = depth
            return depth

        scan_top_down(database, visit)
        tree = database.to_binary_tree()
        unranked = tree.to_unranked()
        expected = {i: d for i, (_n, d) in enumerate(unranked.iter_with_depth())}
        assert depths == expected

    def test_bottom_up_scan_computes_subtree_sizes(self, tmp_path):
        database = self.build(tmp_path, "<a><b>xy</b><c/></a>")
        sizes: dict[int, int] = {}

        def visit(node, record, first_value, second_value):
            size = 1 + (first_value or 0) + (second_value or 0)
            sizes[node] = size
            return size

        result = scan_bottom_up(database, visit)
        assert result.root_value == database.n_nodes
        tree = database.to_binary_tree()
        for node in range(len(tree)):
            assert sizes[node] == len(tree.subtree_nodes(node))

    def test_scan_stack_depth_bound_flat_document(self, tmp_path):
        # 200 children under one root: binary depth 200, XML depth 1.
        document = "<r>" + "<c/>" * 200 + "</r>"
        database = self.build(tmp_path, document)
        down = scan_top_down(database, lambda *a: None)
        up = scan_bottom_up(database, lambda *a: 0)
        assert down.max_stack_depth <= 2
        assert up.max_stack_depth <= 2

    def test_scan_stack_depth_bound_matches_proposition_5_1(self, tmp_path):
        rng = random.Random(5)
        for index in range(5):
            tree = random_unranked_tree(rng, max_nodes=120)
            base = str(tmp_path / f"p51-{index}")
            build_database(tree, base)
            database = ArbDatabase.open(base)
            depth = tree.depth()
            down = scan_top_down(database, lambda *a: None)
            up = scan_bottom_up(database, lambda *a: 0)
            assert down.max_stack_depth <= depth + 1
            assert up.max_stack_depth <= depth + 1

    def test_single_linear_scan(self, tmp_path):
        database = self.build(tmp_path, "<a><b/><c/></a>")
        result = scan_top_down(database, lambda *a: None)
        assert result.io.seeks == 1
        result = scan_bottom_up(database, lambda *a: 0)
        assert result.io.seeks == 1
