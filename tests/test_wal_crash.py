"""Crash consistency of group commits: the `.wal` roll-forward protocol.

A subprocess applies a three-operation group with ``REPRO_UPDATE_FAULT``
naming one of the group-commit fault points, then dies with ``os._exit`` at
that exact stage.  The invariants:

* before the WAL record is durable (``wal-append``) the group simply never
  happened -- the next open discards the torn WAL and serves the old
  generation;
* once the WAL record is durable (``wal-synced`` and every later stage) the
  group is **promised**: the next open replays it to completion, and the
  replayed generation is byte-identical to the same operations applied one
  commit at a time;
* after the pointer swap (``group-swapped``) the group is committed; the
  next open merely truncates the spent WAL;
* the old generation's bytes survive every stage untouched, and the pointer
  file parses at every stage (never torn).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import Database
from repro.storage.build import build_database
from repro.storage.durability import durability
from repro.storage.generations import (
    generation_base,
    list_generations,
    pointer_path,
    read_pointer,
)
from repro.storage.update import (
    FAULT_ENV,
    FAULT_EXIT_CODE,
    GROUP_FAULT_POINTS,
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_update,
)
from repro.storage.wal import read_group, wal_path

SRC = str(Path(__file__).resolve().parents[1] / "src")

DOC = "<lib><book><a/><b/></book><dvd/><book/></lib>"
BOOKS = "QUERY :- V.Label[book];"

#: The group the crashing subprocess attempts (mirrors tests/test_group_commit).
GROUP = (
    Relabel(1, "tome"),
    InsertSubtree(0, "<book><isbn/></book>", position=0),
    DeleteSubtree(4),
)

#: Counter starts at 1 after a build, so a three-op group commits as
#: generation 1 + 3.
TARGET_GENERATION = 4

GROUP_SCRIPT = """
import sys
from repro.storage.update import DeleteSubtree, InsertSubtree, Relabel, apply_many
apply_many(sys.argv[1], [
    Relabel(1, "tome"),
    InsertSubtree(0, "<book><isbn/></book>", position=0),
    DeleteSubtree(4),
])
print("survived")
"""

OPEN_SCRIPT = """
import sys
from repro.storage.database import ArbDatabase
ArbDatabase.open(sys.argv[1])
print("opened")
"""

#: Group stages at which the WAL record is already durable: the group must
#: roll forward on the next open.  ``mid-arb`` and ``pointer-tmp`` are the
#: legacy splice/swap faults the group path passes through as well.
PROMISED_POINTS = ("wal-synced", "mid-arb", "group-files", "pointer-tmp")


def _build(tmp_path, name: str = "doc") -> str:
    base = str(tmp_path / name)
    build_database(DOC, base, text_mode="ignore")
    return base


def _run(script: str, base: str, fault: str | None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if fault is None:
        env.pop(FAULT_ENV, None)
    else:
        env[FAULT_ENV] = fault
    return subprocess.run(
        [sys.executable, "-c", script, base],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _sequential_reference(tmp_path) -> str:
    base = _build(tmp_path, "reference")
    for op in GROUP:
        apply_update(base, op)
    return base


def _old_generation_bytes(base: str) -> dict[str, bytes]:
    snapshot = {}
    for suffix in (".arb", ".lab", ".meta"):
        path = generation_base(base, 0) + suffix
        with open(path, "rb") as handle:
            snapshot[path] = handle.read()
    return snapshot


def test_crash_before_the_wal_is_durable_discards_the_group(tmp_path):
    base = _build(tmp_path)
    old = _old_generation_bytes(base)
    completed = _run(GROUP_SCRIPT, base, "wal-append")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    assert "survived" not in completed.stdout

    # The WAL was never fsynced: whatever of it exists is discarded and the
    # group never happened.
    database = Database.open(base)
    assert database.generation == 0
    assert database.n_nodes == 6
    assert read_pointer(base).counter == 1
    assert list_generations(base) == [0]
    assert _old_generation_bytes(base) == old
    assert read_group(base) is None


@pytest.mark.parametrize("fault", PROMISED_POINTS)
def test_crash_after_the_wal_is_durable_replays_the_group(tmp_path, fault):
    reference = _sequential_reference(tmp_path)
    base = _build(tmp_path)
    old = _old_generation_bytes(base)
    completed = _run(GROUP_SCRIPT, base, fault)
    assert completed.returncode == FAULT_EXIT_CODE, (fault, completed.stderr)

    # The promise is on disk before the crash...
    record = read_group(base)
    assert record is not None
    assert record["target_counter"] == TARGET_GENERATION

    # ...and the next open honours it: the group rolls forward.
    before = durability.snapshot()
    database = Database.open(base)
    assert durability.since(before).wal_replays == 1
    assert database.generation == TARGET_GENERATION
    assert database.n_nodes == 7
    assert database.query(BOOKS, engine="disk").count() == 2

    # Byte identity with the sequential applies survives the crash+replay.
    for suffix in (".arb", ".lab", ".idx"):
        with open(generation_base(base, TARGET_GENERATION) + suffix, "rb") as mine, \
                open(generation_base(reference, TARGET_GENERATION) + suffix, "rb") as theirs:
            assert mine.read() == theirs.read(), (fault, suffix)

    # The old generation is untouched and the WAL is spent.
    assert _old_generation_bytes(base) == old
    assert os.path.getsize(wal_path(base)) == 0


def test_crash_after_the_swap_truncates_the_spent_wal(tmp_path):
    base = _build(tmp_path)
    completed = _run(GROUP_SCRIPT, base, "group-swapped")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    # Committed before the crash: the pointer already names the group's
    # generation; reopening must not replay (that would double-apply).
    assert read_pointer(base).generation == TARGET_GENERATION
    before = durability.snapshot()
    database = Database.open(base)
    assert durability.since(before).wal_replays == 0
    assert database.generation == TARGET_GENERATION
    assert database.n_nodes == 7
    assert os.path.getsize(wal_path(base)) == 0


def test_torn_wal_record_is_discarded(tmp_path):
    base = _build(tmp_path)
    completed = _run(GROUP_SCRIPT, base, "wal-synced")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    assert read_group(base) is not None

    # Tear the tail off the durable record (a torn disk write): the
    # checksum no longer matches, so the promise is void, not corrupt.
    size = os.path.getsize(wal_path(base))
    with open(wal_path(base), "r+b") as handle:
        handle.truncate(size - 3)
    assert read_group(base) is None
    database = Database.open(base)
    assert database.generation == 0
    assert database.n_nodes == 6


def test_replay_is_itself_crash_safe(tmp_path):
    """A crash *during* replay leaves a WAL a later open still honours."""
    base = _build(tmp_path)
    completed = _run(GROUP_SCRIPT, base, "group-files")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    # Reopen with a fault at a later stage: the replay starts, crashes.
    completed = _run(OPEN_SCRIPT, base, "pointer-tmp")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr
    assert "opened" not in completed.stdout
    assert read_group(base) is not None

    # Third open, no fault: the twice-crashed group finally lands, once.
    database = Database.open(base)
    assert database.generation == TARGET_GENERATION
    assert database.n_nodes == 7
    assert database.query(BOOKS, engine="disk").count() == 2


def test_pointer_parses_at_every_group_stage(tmp_path):
    for fault in GROUP_FAULT_POINTS:
        base = _build(tmp_path, f"doc-{fault}")
        completed = _run(GROUP_SCRIPT, base, fault)
        assert completed.returncode == FAULT_EXIT_CODE, (fault, completed.stderr)
        with open(pointer_path(base), "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # parses at every stage: never torn
        assert {"generation", "counter"} <= set(payload) <= \
            {"generation", "counter", "sidecar"}
        # Whatever happened, the base opens and answers.
        Database.open(base).query(BOOKS, engine="disk")


def test_torn_sidecars_behind_a_committed_pointer_are_repaired(tmp_path):
    """os._exit keeps OS-buffered writes, so simulate the power loss by
    hand: after a committed crash, tear the unsynced `.lab` and drop the
    `.meta`; the pointer's sidecar payload must rebuild both on open."""
    base = _build(tmp_path)
    completed = _run(GROUP_SCRIPT, base, "group-swapped")
    assert completed.returncode == FAULT_EXIT_CODE, completed.stderr

    new_base = generation_base(base, TARGET_GENERATION)
    with open(new_base + ".lab", "w", encoding="utf-8") as handle:
        handle.write("@@garbage")
    os.remove(new_base + ".meta")

    database = Database.open(base)
    assert database.generation == TARGET_GENERATION
    assert database.n_nodes == 7
    assert database.query(BOOKS, engine="disk").count() == 2
    assert database.query("QUERY :- V.Label[tome];", engine="disk").count() == 1
