"""Property-based guarantees of the coalescing service.

For random trees, random TMNF query mixes and random arrival orders:

* every coalesced answer is **identical** to evaluating that query alone on
  the same document (selected nodes, counts), whatever rode in the window
  beside it, and
* the document's `.arb` ``pages_read`` for one coalesced window equals the
  single-client figure -- independent of how many clients coalesced.

The query generator draws freely from all four TMNF rule templates (via the
shared :mod:`tests.strategies`), so up/down/local rule interactions are
exercised inside shared windows, not just label filters.
"""

from __future__ import annotations

import asyncio
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, PlanCache
from repro.service import QueryService
from tests.strategies import tmnf_programs as programs, unranked_trees

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


async def _coalesced_burst(database, batch, order):
    """Submit ``batch`` concurrently in ``order``; answers in batch order."""
    async with QueryService(database, window=0.05, max_batch=64) as service:
        tasks: dict[int, asyncio.Task] = {}
        for index in order:
            tasks[index] = asyncio.ensure_future(service.submit(batch[index]))
        responses = {}
        for index, task in tasks.items():
            responses[index] = await task
        return [responses[index] for index in range(len(batch))]


@given(
    batch=st.lists(programs(), min_size=1, max_size=4),
    tree=unranked_trees(),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=15, **COMMON_SETTINGS)
def test_coalesced_answers_equal_solo_evaluation(batch, tree, order_seed):
    order = list(range(len(batch)))
    order_seed.shuffle(order)
    with tempfile.TemporaryDirectory() as directory:
        database = Database.build(tree, f"{directory}/random")
        database.plan_cache = PlanCache()
        responses = asyncio.run(_coalesced_burst(database, batch, order))
        # A fresh cache for the solo reference runs: nothing shared with the
        # coalesced evaluation above.
        reference = Database.open(f"{directory}/random")
        reference.plan_cache = PlanCache()
        for program, response in zip(batch, responses):
            solo = reference.query(program, engine="disk")
            predicate = program.query_predicates[0]
            assert response.result.selected[predicate] == solo.selected[predicate]
            assert response.result.counts[predicate] == solo.counts[predicate]
        reference.close()
        database.close()


@given(
    program=programs(),
    tree=unranked_trees(),
    n_clients=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, **COMMON_SETTINGS)
def test_pages_read_independent_of_coalesced_client_count(program, tree, n_clients):
    with tempfile.TemporaryDirectory() as directory:
        database = Database.build(tree, f"{directory}/random")
        database.plan_cache = PlanCache()
        # Single-client figure: a batch of one over the same database.
        single = database.query_many([program])
        batch = [program] * n_clients
        responses = asyncio.run(
            _coalesced_burst(database, batch, list(range(n_clients)))
        )
        assert all(r.batch_size == n_clients for r in responses)
        assert all(r.batch_id == responses[0].batch_id for r in responses)
        batch_io = responses[0].batch_arb_io
        assert batch_io.pages_read == single.arb_io.pages_read
        assert batch_io.seeks == 2  # one backward + one forward linear scan
        database.close()
