"""Group-commit semantics of :func:`repro.storage.update.apply_many`.

The contract under test: a group of N update operations lands as **one**
spliced generation whose files are byte-identical to what the same
operations produce applied one commit at a time -- while the whole group
pays a bounded durability budget (at most 2 data fsyncs, exactly 1 pointer
swap and 1 WAL append, however large N is) and either commits whole or
leaves the database untouched.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.collection import Collection
from repro.engine import Database
from repro.errors import StorageError
from repro.storage.build import build_database
from repro.storage.database import ArbDatabase
from repro.storage.durability import durability
from repro.storage.generations import generation_base, list_generations, read_pointer
from repro.storage.update import (
    DeleteSubtree,
    GroupCommitResult,
    InsertSubtree,
    Relabel,
    apply_many,
    apply_to_tree,
    apply_update,
    op_from_spec,
)
from repro.storage.wal import wal_path

from tests.strategies import unranked_trees

DOC = "<lib><book><a/><b/></book><dvd/><book/></lib>"
BOOKS = "QUERY :- V.Label[book];"

#: A mixed group: relabel, grow, shrink -- node ids interpreted against the
#: intermediate states, exactly like sequential applies.
GROUP = (
    Relabel(1, "tome"),
    InsertSubtree(0, "<book><isbn/></book>", position=0),
    DeleteSubtree(4),
)


def _build(tmp_path, name: str = "doc") -> str:
    base = str(tmp_path / name)
    build_database(DOC, base, text_mode="ignore")
    return base


def _file_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _generation_bytes(base: str, generation: int, suffix: str) -> bytes:
    return _file_bytes(generation_base(base, generation) + suffix)


# --------------------------------------------------------------------------- #
# Group == sequence
# --------------------------------------------------------------------------- #


def test_group_is_byte_identical_to_sequential_applies(tmp_path):
    grouped = _build(tmp_path, "grouped")
    sequential = _build(tmp_path, "sequential")

    result = apply_many(grouped, list(GROUP))
    for op in GROUP:
        apply_update(sequential, op)

    assert isinstance(result, GroupCommitResult)
    assert result.n_ops == len(GROUP)
    assert result.new_generation == read_pointer(sequential).generation
    assert result.counter == read_pointer(sequential).counter
    for suffix in (".arb", ".lab", ".idx"):
        assert _generation_bytes(grouped, result.new_generation, suffix) == \
            _generation_bytes(sequential, result.new_generation, suffix), suffix

    mine = Database.open(grouped).query(BOOKS, engine="disk")
    theirs = Database.open(sequential).query(BOOKS, engine="disk")
    assert mine.selected_nodes() == theirs.selected_nodes()
    # The group committed: its WAL is spent.
    assert not os.path.exists(wal_path(grouped)) or \
        os.path.getsize(wal_path(grouped)) == 0


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_random_groups_equal_sequential_applies(data):
    """apply_many(ops) == N x apply_update(op), for random valid groups."""
    labels = ("a", "b", "c")
    tree = data.draw(unranked_trees(max_leaves=6))
    n_ops = data.draw(st.integers(1, 4))
    mirror = tree
    ops = []
    for _ in range(n_ops):
        nodes = list(mirror.iter_nodes())
        kinds = ["relabel", "insert"] + (["delete"] if len(nodes) > 1 else [])
        kind = data.draw(st.sampled_from(kinds))
        if kind == "relabel":
            op = Relabel(data.draw(st.integers(0, len(nodes) - 1)),
                         data.draw(st.sampled_from(labels)))
        elif kind == "delete":
            op = DeleteSubtree(data.draw(st.integers(1, len(nodes) - 1)))
        else:
            parent = data.draw(st.integers(0, len(nodes) - 1))
            position = data.draw(st.integers(0, len(nodes[parent].children)))
            op = InsertSubtree(parent, data.draw(unranked_trees(max_leaves=3)),
                               position=position)
        ops.append(op)
        mirror = apply_to_tree(mirror, op)

    with tempfile.TemporaryDirectory() as tmp:
        grouped = os.path.join(tmp, "grouped")
        sequential = os.path.join(tmp, "sequential")
        build_database(tree, grouped)
        build_database(tree, sequential)
        result = apply_many(grouped, ops)
        for op in ops:
            apply_update(sequential, op)
        assert result.n_nodes == mirror.node_count()
        for suffix in (".arb", ".lab", ".idx"):
            assert _generation_bytes(grouped, result.new_generation, suffix) == \
                _generation_bytes(sequential, result.new_generation, suffix), suffix


# --------------------------------------------------------------------------- #
# Durability budget
# --------------------------------------------------------------------------- #


def test_group_commit_fsync_budget(tmp_path):
    """N queued ops cost at most 2 data fsyncs and exactly 1 pointer swap."""
    base = _build(tmp_path)
    before = durability.snapshot()
    apply_many(base, list(GROUP))
    delta = durability.since(before)
    assert delta.data_fsyncs <= 2, delta
    assert delta.pointer_swaps == 1, delta
    assert delta.wal_appends == 1, delta
    assert delta.wal_replays == 0, delta


def test_sequential_applies_cost_more_fsyncs_than_one_group(tmp_path):
    grouped = _build(tmp_path, "grouped")
    sequential = _build(tmp_path, "sequential")
    before = durability.snapshot()
    apply_many(grouped, list(GROUP))
    group_cost = durability.since(before).data_fsyncs
    before = durability.snapshot()
    for op in GROUP:
        apply_update(sequential, op)
    assert durability.since(before).data_fsyncs > group_cost


# --------------------------------------------------------------------------- #
# Atomicity and validation
# --------------------------------------------------------------------------- #


def test_failed_group_commits_nothing(tmp_path):
    """One bad op rejects the whole group; nothing changes on disk."""
    base = _build(tmp_path)
    pointer = read_pointer(base)
    arb = _generation_bytes(base, 0, ".arb")
    with pytest.raises(StorageError):
        apply_many(base, [Relabel(1, "tome"), DeleteSubtree(999)])
    assert read_pointer(base) == pointer
    assert list_generations(base) == [0]
    assert _generation_bytes(base, 0, ".arb") == arb
    assert not os.path.exists(wal_path(base)) or \
        os.path.getsize(wal_path(base)) == 0
    # The base is not wedged: a clean group still lands.
    result = apply_many(base, list(GROUP))
    assert result.new_generation == pointer.counter + len(GROUP)


def test_empty_group_is_rejected(tmp_path):
    base = _build(tmp_path)
    with pytest.raises(StorageError):
        apply_many(base, [])


def test_stale_expectation_is_refused(tmp_path):
    base = _build(tmp_path)
    apply_update(base, Relabel(1, "tome"))
    with pytest.raises(StorageError):
        apply_many(base, [Relabel(1, "x")], expected_generation=0,
                   expected_counter=1)


# --------------------------------------------------------------------------- #
# Upper layers
# --------------------------------------------------------------------------- #


def test_engine_apply_many_refreshes_the_handle(tmp_path):
    base = _build(tmp_path)
    database = Database.open(base)
    snapshot = Database.open(base)
    result = database.apply_many(list(GROUP))
    assert isinstance(result, GroupCommitResult)
    assert database.generation == result.new_generation
    assert database.n_nodes == result.n_nodes
    # Copy-on-write still holds for the whole group: the pre-group reader
    # keeps its snapshot.
    assert snapshot.generation == 0
    assert snapshot.n_nodes == 6


def test_collection_apply_many_advances_the_manifest_once(tmp_path):
    root = str(tmp_path / "corpus")
    collection = Collection.create(root)
    collection.add_document(DOC, doc_id="one", text_mode="ignore")
    result = collection.apply_many("one", list(GROUP))
    entry = collection.manifest.get("one")
    assert entry.generation == result.new_generation
    assert entry.counter == result.counter
    assert entry.n_nodes == result.n_nodes
    # The save is durable: a fresh open sees the new generation.
    reopened = Collection.open(root)
    assert reopened.manifest.get("one").generation == result.new_generation
    assert reopened.query(BOOKS).count() == 2


def test_op_from_spec_round_trip(tmp_path):
    specs = [
        {"kind": "relabel", "node": 1, "label": "tome"},
        {"kind": "insert", "parent": 0, "xml": "<book><isbn/></book>", "at": 0},
        {"kind": "delete", "node": 4},
    ]
    assert [op_from_spec(spec) for spec in specs] == list(GROUP)
    with pytest.raises(StorageError):
        op_from_spec({"kind": "vacuum"})
    with pytest.raises(StorageError):
        op_from_spec({"kind": "relabel", "node": 1})  # missing label


# --------------------------------------------------------------------------- #
# Service write coalescing
# --------------------------------------------------------------------------- #


def test_service_coalesces_concurrent_updates_into_one_group(tmp_path):
    import asyncio

    from repro.service import QueryService

    base = _build(tmp_path)
    database = Database.open(base)

    async def main():
        async with QueryService(database, write_window=0.05,
                                max_write_batch=8) as service:
            before = durability.snapshot()
            results = await asyncio.gather(
                *[service.apply(op) for op in GROUP]
            )
            return results, durability.since(before), service.stats()

    results, delta, stats = asyncio.run(main())
    # Every rider resolves with the same shared group result...
    assert all(result is results[0] for result in results)
    assert isinstance(results[0], GroupCommitResult)
    assert results[0].n_ops == len(GROUP)
    # ...and the whole burst paid one group's durability budget.
    assert delta.data_fsyncs <= 2
    assert delta.pointer_swaps == 1
    assert delta.wal_appends == 1
    assert stats.write_batches == 1
    assert stats.coalesced_updates == len(GROUP)
    assert stats.largest_write_batch == len(GROUP)
    assert stats.updates == len(GROUP)
    assert database.generation == results[0].new_generation


def test_service_applies_an_op_sequence_as_one_group(tmp_path):
    """A caller-supplied sequence (the wire ``update`` op sends one) is a
    declared group: one generation, even with no write window."""
    import asyncio

    from repro.service import QueryService

    base = _build(tmp_path)
    database = Database.open(base)

    async def main():
        async with QueryService(database) as service:  # write_window=0
            before = durability.snapshot()
            result = await service.apply(list(GROUP))
            return result, durability.since(before)

    result, delta = asyncio.run(main())
    assert isinstance(result, GroupCommitResult)
    assert result.n_ops == len(GROUP)
    assert delta.pointer_swaps == 1
    assert delta.wal_appends == 1
    assert read_pointer(base).counter == 1 + len(GROUP)
    assert list_generations(base) == [0, result.new_generation]


def test_service_write_window_zero_keeps_per_update_commits(tmp_path):
    import asyncio

    from repro.service import QueryService

    base = _build(tmp_path)
    database = Database.open(base)

    async def main():
        async with QueryService(database) as service:  # write_window=0
            return await asyncio.gather(*[service.apply(op) for op in GROUP])

    results = asyncio.run(main())
    # The historical behaviour: per-op UpdateResult, one commit each.
    assert [type(result).__name__ for result in results] == \
        ["UpdateResult"] * len(GROUP)
    assert read_pointer(base).counter == 1 + len(GROUP)
    assert len(list_generations(base)) == 1 + len(GROUP)


def test_service_mixed_group_keeps_explicit_retention(tmp_path):
    """Regression: a rider with an explicit ``retain_generations`` riding in
    a group with default-retention riders must still get its pruning.

    The old resolution (``max(retains) if all(r is not None) else None``)
    discarded retention for the whole group as soon as one rider used the
    default -- the common case, since most writers never pass it.
    """
    import asyncio

    from repro.service import QueryService

    base = _build(tmp_path)
    # An intermediate generation for the pruning to bite on (generation 0,
    # the original build, is never pruned).
    apply_update(base, Relabel(1, "pre"))
    database = Database.open(base)

    async def main():
        async with QueryService(database, write_window=0.05,
                                max_write_batch=8) as service:
            return await asyncio.gather(
                service.apply(Relabel(1, "tome")),  # default retention
                service.apply(Relabel(2, "x"), retain_generations=1),
                service.apply(Relabel(3, "y")),  # default retention
            )

    results = asyncio.run(main())
    # One shared group commit...
    assert all(result is results[0] for result in results)
    assert isinstance(results[0], GroupCommitResult)
    # ...whose explicit rider's retention was honoured: the intermediate
    # generation is pruned, leaving only the original build and the newest.
    assert list_generations(base) == [0, results[0].new_generation]


def test_service_isolates_a_poisoned_update_in_a_group(tmp_path):
    import asyncio

    from repro.service import QueryService

    base = _build(tmp_path)
    database = Database.open(base)

    async def main():
        async with QueryService(database, write_window=0.05,
                                max_write_batch=8) as service:
            return await asyncio.gather(
                service.apply(Relabel(1, "tome")),
                service.apply(DeleteSubtree(999)),  # poisoned
                service.apply(Relabel(2, "x")),
                return_exceptions=True,
            )

    first, poisoned, third = asyncio.run(main())
    assert isinstance(poisoned, StorageError)
    assert not isinstance(first, BaseException)
    assert not isinstance(third, BaseException)
    # The clean riders still landed (per-op fallback after the group failed).
    assert database.query(BOOKS, engine="disk").count() == 1
    assert database.query("QUERY :- V.Label[tome];", engine="disk").count() == 1
