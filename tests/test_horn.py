"""Unit tests for the propositional Horn machinery (LTUR, contraction)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import horn
from repro.core.horn import Rule, fact


class TestRule:
    def test_fact_has_empty_body(self):
        rule = fact("P")
        assert rule.is_fact()
        assert rule.head == "P"
        assert rule.body == frozenset()

    def test_rule_body_is_frozenset(self):
        rule = Rule("P", ["A", "B", "A"])
        assert rule.body == frozenset({"A", "B"})

    def test_rules_are_hashable_and_comparable(self):
        assert Rule("P", ["A", "B"]) == Rule("P", ["B", "A"])
        assert len({Rule("P", ["A"]), Rule("P", ["A"])}) == 1

    def test_tautology_detection(self):
        assert Rule("P", ["P", "Q"]).is_tautology()
        assert not Rule("P", ["Q"]).is_tautology()

    def test_repr_mentions_head_and_body(self):
        assert repr(fact("P")) == "P <-"
        assert repr(Rule("P", ["A"])) == "P <- A"


class TestSuperscripts:
    def test_push_down_and_strip(self):
        assert horn.push_down("P", 1) == "P#1"
        assert horn.push_down("P", 2) == "P#2"
        assert horn.strip_superscript("P#1") == "P"
        assert horn.strip_superscript("P") == "P"

    def test_superscript_of(self):
        assert horn.superscript_of("P") == 0
        assert horn.superscript_of("P#1") == 1
        assert horn.superscript_of("P#2") == 2

    def test_push_down_rejects_bad_child_index(self):
        with pytest.raises(ValueError):
            horn.push_down("P", 3)

    def test_push_down_rejects_double_superscript(self):
        with pytest.raises(ValueError):
            horn.push_down("P#1", 1)

    def test_push_down_program(self):
        rules = [Rule("P", ["Q", "R"]), fact("S")]
        pushed = horn.push_down_program(rules, 2)
        assert Rule("P#2", ["Q#2", "R#2"]) in pushed
        assert fact("S#2") in pushed


class TestHelpers:
    def test_preds_as_rules(self):
        rules = horn.preds_as_rules(["A", "B"])
        assert fact("A") in rules and fact("B") in rules

    def test_true_preds(self):
        program = [fact("A"), Rule("B", ["A"]), fact("C")]
        assert horn.true_preds(program) == frozenset({"A", "C"})

    def test_program_predicates(self):
        program = [Rule("A", ["B", "C"]), fact("D")]
        assert horn.program_predicates(program) == frozenset("ABCD")


class TestLtur:
    def test_simple_chain(self):
        program = [fact("A"), Rule("B", ["A"]), Rule("C", ["B"])]
        result = horn.ltur(program)
        assert result.derived == frozenset({"A", "B", "C"})

    def test_conjunction_requires_all_body_atoms(self):
        program = [fact("A"), Rule("C", ["A", "B"])]
        result = horn.ltur(program)
        assert "C" not in result.derived

    def test_residual_contains_derived_idb_facts(self):
        program = [fact("A"), Rule("B", ["A"])]
        residual = horn.ltur(program).residual
        assert fact("A") in residual and fact("B") in residual

    def test_residual_drops_satisfied_rules(self):
        program = [fact("A"), Rule("B", ["A"]), Rule("B", ["Z"])]
        residual = set(horn.ltur(program).residual)
        # B is derived, so no conditional rule for B remains.
        assert all(rule.body == frozenset() for rule in residual if rule.head == "B")

    def test_residual_removes_true_body_predicates(self):
        program = [fact("A"), Rule("C", ["A", "B"])]
        residual = set(horn.ltur(program).residual)
        assert Rule("C", ["B"]) in residual

    def test_rules_with_false_edb_predicates_are_dropped(self):
        program = [Rule("P", ["Root"]), Rule("Q", ["X"])]
        result = horn.ltur(program, edb_predicates=frozenset({"Root"}))
        assert Rule("P", ["Root"]) not in result.residual
        assert Rule("Q", ["X"]) in result.residual

    def test_derived_edb_predicates_are_not_reasserted(self):
        program = [fact("Root"), Rule("P", ["Root"])]
        result = horn.ltur(program, edb_predicates=frozenset({"Root"}))
        assert fact("Root") not in result.residual
        assert fact("P") in result.residual

    def test_example_4_5_leaf(self):
        """The leaf v2 of Example 4.5 yields the residual {P4 <- P3}."""
        program = [
            Rule("P1", ["Root"]),
            Rule("P4", ["P3", "-HasFirstChild"]),
            fact("-HasFirstChild"),
            fact("-HasSecondChild"),
            fact("Label[a]"),
        ]
        edb = frozenset({"Root", "-Root", "-HasFirstChild", "HasFirstChild",
                         "-HasSecondChild", "HasSecondChild", "Label[a]"})
        residual = horn.ltur(program, edb).residual
        assert set(residual) == {Rule("P4", ["P3"])}

    def test_empty_program(self):
        result = horn.ltur([])
        assert result.derived == frozenset()
        assert result.residual == ()

    @given(st.lists(st.sampled_from("ABCDEF"), min_size=0, max_size=6))
    def test_derived_is_superset_of_facts(self, heads):
        program = [fact(h) for h in heads] + [Rule("Z", ["A", "B"])]
        result = horn.ltur(program)
        assert set(heads) <= result.derived


class TestContractProgram:
    def test_paper_example_4_4(self):
        """Example 4.4: the given program contracts to three local rules."""
        program = [
            Rule("P0", ["P1", "P2"]),
            Rule("P1", ["P3#1"]),
            Rule("P2", ["P4#1"]),
            Rule("P3#1", ["P5#1"]),
            Rule("P4#1", ["P5#1", "P6#1"]),
            Rule("P5#1", ["P7"]),
            Rule("P6#1", ["P7", "P8"]),
            Rule("P8", ["P9#2", "P10#2"]),
            Rule("P9#2", ["P11"]),
        ]
        contracted = horn.contract_program(program)
        assert contracted == frozenset(
            {Rule("P0", ["P1", "P2"]), Rule("P1", ["P7"]), Rule("P2", ["P7", "P8"])}
        )

    def test_example_4_5_contraction(self):
        """The unfolding chain of Example 4.5 yields {P5 <- P2}."""
        program = [
            Rule("P2#1", ["P1"]),
            Rule("P3#1", ["P2"]),
            Rule("P5", ["P4#1"]),
            Rule("Q", ["P5#1"]),
            Rule("P4#1", ["P3#1"]),
        ]
        assert horn.contract_program(program) == frozenset({Rule("P5", ["P2"])})

    def test_local_rules_pass_through(self):
        program = [Rule("A", ["B"]), fact("C")]
        contracted = horn.contract_program(program)
        assert Rule("A", ["B"]) in contracted and fact("C") in contracted

    def test_rules_with_unresolvable_superscripts_are_dropped(self):
        program = [Rule("A", ["B#1"])]
        assert horn.contract_program(program) == frozenset()

    def test_budget_guard(self):
        # Build a program designed to explode combinatorially and check the
        # guard raises instead of hanging.
        rules = []
        for i in range(12):
            rules.append(Rule(f"X{i}#1", [f"Y{i}a#1", f"Y{i}b#1"]))
            rules.append(Rule(f"Y{i}a#1", [f"X{(i + 1) % 12}#1", f"Z{i}#1"]))
            rules.append(Rule(f"Y{i}b#1", [f"X{(i + 3) % 12}#1", f"W{i}#1"]))
        rules.append(Rule("GOAL", ["X0#1"]))
        with pytest.raises(RuntimeError):
            horn.contract_program(rules, max_rules=50)


class TestSimplifyProgram:
    def test_drops_tautologies(self):
        assert horn.simplify_program([Rule("P", ["P"])]) == frozenset()

    def test_drops_rules_whose_head_is_a_fact(self):
        program = [fact("P"), Rule("P", ["Q"])]
        assert horn.simplify_program(program) == frozenset({fact("P")})

    def test_subsumption(self):
        program = [Rule("P", ["A"]), Rule("P", ["A", "B"])]
        assert horn.simplify_program(program) == frozenset({Rule("P", ["A"])})

    def test_keeps_incomparable_bodies(self):
        program = [Rule("P", ["A"]), Rule("P", ["B"])]
        assert horn.simplify_program(program) == frozenset(program)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from("PQR"),
                st.sets(st.sampled_from("ABCPQR"), max_size=3),
            ),
            max_size=8,
        )
    )
    def test_simplification_preserves_derived_atoms(self, raw_rules):
        """Simplify must not change what is derivable from any set of facts."""
        program = [Rule(head, body) for head, body in raw_rules]
        simplified = list(horn.simplify_program(program))
        for seed in [set(), {"A"}, {"A", "B"}, {"A", "B", "C"}]:
            seeded = horn.preds_as_rules(seed)
            before = horn.ltur(list(program) + seeded).derived
            after = horn.ltur(simplified + seeded).derived
            assert before == after
