"""Tests for the TMNF surface-syntax parser."""

from __future__ import annotations

import pytest

from repro.errors import TMNFSyntaxError
from repro.tmnf import parse_rules
from repro.tmnf.ast import CaterpillarRule, DownRule, LocalRule, UpRule
from repro.tmnf.caterpillar import Alt, Concat, Star


class TestStrictTemplates:
    def test_template_1_unary_edb(self):
        rules = parse_rules("P :- Root;")
        assert rules == [LocalRule("P", ("Root",))]

    def test_template_1_with_alias(self):
        rules = parse_rules("P :- Leaf;")
        assert rules == [LocalRule("P", ("-HasFirstChild",))]

    def test_template_2_down(self):
        rules = parse_rules("P :- P0.FirstChild;")
        assert rules == [DownRule("P", "P0", "FirstChild")]

    def test_template_2_next_sibling_alias(self):
        rules = parse_rules("P :- P0.NextSibling;")
        assert rules == [DownRule("P", "P0", "SecondChild")]

    def test_template_3_up(self):
        rules = parse_rules("P :- P0.invFirstChild;")
        assert rules == [UpRule("P", "P0", "FirstChild")]

    def test_template_3_inv_next_sibling(self):
        rules = parse_rules("P :- P0.invNextSibling;")
        assert rules == [UpRule("P", "P0", "SecondChild")]

    def test_template_4_conjunction(self):
        rules = parse_rules("P :- P1, P2;")
        assert rules == [LocalRule("P", ("P1", "P2"))]

    def test_conjunction_with_edb(self):
        rules = parse_rules("Even :- Leaf, -Label[a];")
        assert rules == [LocalRule("Even", ("-HasFirstChild", "-Label[a]"))]

    def test_universe_body(self):
        rules = parse_rules("P :- V;")
        assert rules == [LocalRule("P", ())]

    def test_multiple_rules(self):
        rules = parse_rules("A :- Root; B :- A.FirstChild;")
        assert len(rules) == 2


class TestCaterpillarSyntax:
    def test_simple_path(self):
        rules = parse_rules("Q :- P.FirstChild.NextSibling*.Label[a];")
        assert len(rules) == 1
        rule = rules[0]
        assert isinstance(rule, CaterpillarRule)
        assert rule.head == "Q" and rule.start == "P"
        assert isinstance(rule.expr, Concat)

    def test_benchmark_query_shape(self):
        text = """
        QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].
                 (FirstChild.NextSibling*.Label[NP].FirstChild.NextSibling*.Label[PP])*.
                 FirstChild.NextSibling*.Label[NP];
        """
        rules = parse_rules(text)
        assert len(rules) == 1
        rule = rules[0]
        assert isinstance(rule, CaterpillarRule)
        assert rule.start == "V"

    def test_alternation_and_inverse_axes(self):
        text = """
        Prev :- Cur.(FirstChild.SecondChild*.-hasSecondChild
                    | -hasFirstChild.invFirstChild*.invSecondChild);
        """
        rules = parse_rules(text)
        rule = rules[0]
        assert isinstance(rule, CaterpillarRule)
        assert isinstance(rule.expr, (Alt,))

    def test_case_insensitive_relation_names(self):
        rules = parse_rules("P :- P0.firstchild;")
        assert rules == [DownRule("P", "P0", "FirstChild")]

    def test_mixed_conjunction_with_path(self):
        rules = parse_rules("Q :- P.FirstChild.Label[a], R;")
        # One caterpillar via an auxiliary predicate plus one local join rule.
        heads = [rule.head for rule in rules]
        assert "Q" in heads
        cat_rules = [rule for rule in rules if isinstance(rule, CaterpillarRule)]
        assert len(cat_rules) == 1
        local = [rule for rule in rules if isinstance(rule, LocalRule) and rule.head == "Q"]
        assert len(local) == 1
        assert "R" in local[0].body

    def test_star_on_group(self):
        rules = parse_rules("Q :- P.(FirstChild | SecondChild)*;")
        rule = rules[0]
        assert isinstance(rule, CaterpillarRule)
        assert isinstance(rule.expr, Star)

    def test_plus_and_optional(self):
        rules = parse_rules("Q :- P.FirstChild+.Label[a]?;")
        assert isinstance(rules[0], CaterpillarRule)


class TestErrorsAndComments:
    def test_comments_are_ignored(self):
        rules = parse_rules("# leading comment\nP :- Root; // trailing\n")
        assert rules == [LocalRule("P", ("Root",))]

    def test_missing_semicolon(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("P :- Root")

    def test_edb_head_rejected(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("Root :- P;")

    def test_label_head_rejected(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("Label[a] :- P;")

    def test_item_starting_with_relation_rejected(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("P :- FirstChild.Q;")

    def test_unterminated_bracket(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("P :- Label[a;")

    def test_unexpected_character(self):
        with pytest.raises(TMNFSyntaxError):
            parse_rules("P :- Q @ R;")

    def test_error_reports_line_number(self):
        with pytest.raises(TMNFSyntaxError) as excinfo:
            parse_rules("A :- Root;\nB :- ;\n")
        assert excinfo.value.line == 2
