"""Tests for the public Database/QueryResult API and the CLI."""

from __future__ import annotations

import pytest

from repro import Database, TMNFProgram, compile_query
from repro.cli import main as cli_main
from repro.errors import EvaluationError

DOCUMENT = "<library><book><title>ab</title></book><dvd/><book/></library>"


class TestDatabaseAPI:
    def test_from_xml_and_simple_query(self):
        database = Database.from_xml(DOCUMENT)
        result = database.query("QUERY :- V.Label[book];")
        assert result.count() == 2
        assert [database.label(v) for v in result.selected_nodes()] == ["book", "book"]

    def test_xpath_query(self):
        database = Database.from_xml(DOCUMENT, text_mode="ignore")
        result = database.query("//book[title]", language="xpath")
        assert result.count() == 1

    def test_query_accepts_program_object(self):
        database = Database.from_xml(DOCUMENT)
        program = TMNFProgram.parse("QUERY :- V.Label[dvd];")
        assert database.query(program).count() == 1

    def test_compile_query_rejects_unknown_language(self):
        with pytest.raises(EvaluationError):
            compile_query("//a", language="sql")

    def test_fixpoint_reference_evaluation(self):
        database = Database.from_xml(DOCUMENT)
        fast = database.query("QUERY :- V.Label[book];")
        slow = database.query_fixpoint("QUERY :- V.Label[book];")
        assert fast.selected_nodes() == slow.selected_nodes()

    def test_on_disk_database(self, tmp_path):
        base = str(tmp_path / "library")
        database = Database.build(DOCUMENT, base)
        assert database.is_on_disk
        result = database.query("QUERY :- V.Label[book];")
        assert result.count() == 2
        assert result.io is not None and result.io.bytes_read > 0
        # Forcing the in-memory path gives the same answer.
        in_memory = database.query("QUERY :- V.Label[book];", force_disk=False)
        assert in_memory.selected_nodes() == result.selected_nodes()

    def test_force_disk_on_memory_database_fails(self):
        database = Database.from_xml(DOCUMENT)
        with pytest.raises(EvaluationError):
            database.query("QUERY :- V.Label[book];", force_disk=True)

    def test_markup_output(self):
        database = Database.from_xml(DOCUMENT, text_mode="ignore")
        result = database.query("QUERY :- V.Label[dvd];")
        output = database.to_xml(result.selected_nodes())
        assert '<dvd arb:selected="true"/>' in output

    def test_unknown_predicate_in_result(self):
        database = Database.from_xml(DOCUMENT)
        result = database.query("QUERY :- V.Label[book];")
        with pytest.raises(EvaluationError):
            result.selected_nodes("Nope")

    def test_n_nodes_and_repr(self):
        database = Database.from_xml(DOCUMENT, text_mode="ignore")
        assert database.n_nodes == 5
        assert "memory" in repr(database)


class TestCLI:
    def test_build_query_stats_round_trip(self, tmp_path, capsys):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(DOCUMENT)
        base = str(tmp_path / "doc")

        assert cli_main(["build", str(xml_path), base]) == 0
        captured = capsys.readouterr().out
        assert "elem_nodes" in captured

        assert cli_main(["query", base, "-q", "QUERY :- V.Label[book];", "--ids"]) == 0
        captured = capsys.readouterr().out
        assert "selected nodes  : 2" in captured

        assert cli_main(["stats", base]) == 0
        captured = capsys.readouterr().out
        assert "nodes" in captured

    def test_query_xml_file_with_xpath(self, tmp_path, capsys):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(DOCUMENT)
        assert cli_main(["query", str(xml_path), "-x", "//book", "--mark-up"]) == 0
        captured = capsys.readouterr().out
        assert 'arb:selected="true"' in captured

    def test_query_program_file(self, tmp_path, capsys):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(DOCUMENT)
        program_path = tmp_path / "q.tmnf"
        program_path.write_text("QUERY :- V.Label[dvd];")
        assert cli_main(["query", str(xml_path), "-f", str(program_path)]) == 0
        assert "selected nodes  : 1" in capsys.readouterr().out

    def test_error_reporting(self, tmp_path, capsys):
        xml_path = tmp_path / "doc.xml"
        xml_path.write_text(DOCUMENT)
        assert cli_main(["query", str(xml_path), "-q", "broken ::"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchHarness:
    """Smoke tests for the Figure 5 / Figure 6 builders (tiny scales)."""

    def test_figure5_row(self, tmp_path):
        from repro.bench.figure5 import Figure5Scale, build_figure5_database

        scale = Figure5Scale(treebank_nodes=500, acgt_exponent=6, swissprot_entries=5)
        stats = build_figure5_database("ACGT-flat", str(tmp_path), scale)
        row = stats.as_row()
        assert row["elem_nodes"] == 1
        assert row["char_nodes"] == 2**6 - 1
        assert row["arb_bytes"] == 2 * stats.total_nodes

    def test_figure6_row_and_acgt_consistency(self):
        from repro.bench.figure6 import load_block_tree, run_query_batch

        flat = load_block_tree("acgt-flat", acgt_exponent=8)
        infix = load_block_tree("acgt-infix", acgt_exponent=8)
        flat_row = run_query_batch("acgt-flat", flat, 5, queries_per_size=2).as_row()
        infix_row = run_query_batch("acgt-infix", infix, 5, queries_per_size=2).as_row()
        # Same expressions on both encodings select the same number of nodes.
        assert flat_row["selected"] == infix_row["selected"]
        for column in ("|IDB|", "|P|", "bu_transitions", "td_transitions", "total_time_s"):
            assert column in flat_row

    def test_format_table(self):
        from repro.bench.reporting import format_table

        text = format_table([{"a": 1, "b": 2.5}, {"a": 30, "b": 4.0}], title="T")
        assert "T" in text and "a" in text and "30" in text
