"""Tests for the relational (EDB) view of binary trees."""

from __future__ import annotations

import pytest

from repro.tree import BinaryTree, parse_xml
from repro.tree import model as m


class TestNames:
    def test_label_predicate_round_trip(self):
        assert m.label_predicate("gene") == "Label[gene]"
        assert m.label_of_predicate("Label[gene]") == "gene"
        assert m.label_of_predicate("-Label[gene]") == "gene"
        assert m.is_label_predicate("Label[a]")
        assert not m.is_label_predicate("Root")

    def test_label_of_predicate_rejects_non_labels(self):
        with pytest.raises(ValueError):
            m.label_of_predicate("Root")

    def test_negate(self):
        assert m.negate("Root") == "-Root"
        assert m.negate("-Root") == "Root"

    def test_normalize_unary_aliases(self):
        assert m.normalize_unary("Leaf") == "-HasFirstChild"
        assert m.normalize_unary("LastSibling") == "-HasSecondChild"
        assert m.normalize_unary("-Leaf") == "HasFirstChild"
        assert m.normalize_unary("Root") == "Root"
        assert m.normalize_unary("Label[x]") == "Label[x]"

    def test_normalize_binary_aliases(self):
        assert m.normalize_binary("NextSibling") == "SecondChild"
        assert m.normalize_binary("invNextSibling") == "invSecondChild"
        assert m.normalize_binary("FirstChild") == "FirstChild"

    def test_invert_binary(self):
        assert m.invert_binary("FirstChild") == "invFirstChild"
        assert m.invert_binary("invSecondChild") == "SecondChild"
        assert m.invert_binary("NextSibling") == "invSecondChild"
        with pytest.raises(ValueError):
            m.invert_binary("Sibling")


class TestUnaryHolds:
    @pytest.fixture
    def tree(self) -> BinaryTree:
        return BinaryTree.from_unranked(parse_xml("<r><a><b/></a><a/></r>"))

    def test_root(self, tree):
        assert m.unary_holds(tree, 0, "Root")
        assert not m.unary_holds(tree, 1, "Root")
        assert m.unary_holds(tree, 1, "-Root")

    def test_labels(self, tree):
        assert m.unary_holds(tree, 0, "Label[r]")
        assert m.unary_holds(tree, 1, "Label[a]")
        assert not m.unary_holds(tree, 1, "Label[b]")
        assert m.unary_holds(tree, 1, "-Label[b]")

    def test_child_flags(self, tree):
        # node 1 is <a> with a child <b> and a following sibling <a>.
        assert m.unary_holds(tree, 1, "HasFirstChild")
        assert m.unary_holds(tree, 1, "HasSecondChild")
        # node 2 is <b>: a leaf, last sibling.
        assert m.unary_holds(tree, 2, "-HasFirstChild")
        assert m.unary_holds(tree, 2, "-HasSecondChild")

    def test_universe(self, tree):
        assert all(m.unary_holds(tree, v, "V") for v in range(len(tree)))

    def test_unknown_predicate(self, tree):
        with pytest.raises(ValueError):
            m.unary_holds(tree, 0, "Frobnicate")


class TestNodeSchema:
    def test_from_predicates(self):
        schema = m.NodeSchema.from_predicates(
            ["Root", "-HasFirstChild", "Label[a]", "-Label[b]"]
        )
        assert schema.positive_labels == frozenset({"a"})
        assert schema.negative_labels == frozenset({"b"})
        assert schema.builtins == frozenset({"Root", "HasFirstChild"})

    def test_from_predicates_rejects_unknown(self):
        with pytest.raises(ValueError):
            m.NodeSchema.from_predicates(["NotAThing"])

    def test_node_label_set_restricted_to_schema(self):
        tree = BinaryTree.from_unranked(parse_xml("<r><a/><b/></r>"))
        schema = m.NodeSchema.from_predicates(["Root", "Label[a]", "-Label[b]"])
        root_set = schema.node_label_set(tree, 0)
        assert root_set == frozenset({"Root", "-Label[b]"})
        a_set = schema.node_label_set(tree, 1)
        assert a_set == frozenset({"-Root", "Label[a]", "-Label[b]"})
        b_set = schema.node_label_set(tree, 2)
        assert b_set == frozenset({"-Root"})

    def test_label_set_for_matches_node_label_set(self):
        tree = BinaryTree.from_unranked(parse_xml("<r><a><c/></a><b/></r>"))
        schema = m.NodeSchema.from_predicates(
            ["Root", "HasFirstChild", "-HasSecondChild", "Label[a]", "Label[c]"]
        )
        for node in range(len(tree)):
            expected = schema.node_label_set(tree, node)
            got = schema.label_set_for(
                tree.labels[node],
                is_root=node == tree.root,
                has_first_child=tree.first_child[node] != -1,
                has_second_child=tree.second_child[node] != -1,
            )
            assert got == expected

    def test_all_predicates_covers_both_polarities(self):
        schema = m.NodeSchema.from_predicates(["Root", "-Label[b]", "Label[a]"])
        preds = schema.all_predicates()
        assert {"Root", "-Root", "Label[b]", "-Label[b]", "Label[a]"} <= preds

    def test_empty_schema_produces_empty_label_sets(self):
        tree = BinaryTree.from_unranked(parse_xml("<r><a/></r>"))
        schema = m.NodeSchema.from_predicates([])
        assert schema.node_label_set(tree, 0) == frozenset()
        assert schema.node_label_set(tree, 1) == frozenset()
